//! Query compilation: from a conjunctive query to per-answer witness masks.
//!
//! The enumeration baseline evaluates `Q(I)` with a fresh homomorphism
//! search on every one of the `2^n` worlds. The kernel instead runs the
//! search **once**, against the saturated instance (every tuple of the
//! space present): each homomorphism contributes its head image (a possible
//! answer) and its body image (a witness — a set of space indices). By
//! monotonicity of conjunctive queries, `a ∈ Q(I)` iff some witness of `a`
//! is contained in `I`, so evaluating a compiled query against a world is a
//! handful of mask containment tests (`w & m == w`) instead of a search.
//!
//! This is exactly the lineage construction of Example 4.12
//! (`Q = t1 ∨ (t2 ∧ t4)`), generalised from boolean queries to one DNF per
//! possible answer.

use qvsec_cq::eval::Answer;
use qvsec_cq::homomorphism::find_homomorphisms;
use qvsec_cq::ConjunctiveQuery;
use qvsec_data::bitset::BitSet;
use qvsec_data::{Instance, TupleSpace};
use std::collections::{BTreeMap, BTreeSet};

/// A query compiled against a tuple space.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Every answer with at least one witness, in canonical (sorted) order —
    /// the same order as `possible_answers` iteration over a `BTreeSet`.
    answers: Vec<Answer>,
    /// Per answer: the minimal witnesses as sorted space-index lists.
    witnesses: Vec<Vec<Vec<usize>>>,
    /// Per answer: the same witnesses as `u64` masks (populated only when
    /// the space has at most 64 tuples — always true for the exact path,
    /// which is capped at `MAX_ENUMERABLE`).
    masks: Option<Vec<Vec<u64>>>,
    /// Per answer: the same witnesses as chunked bitsets (any space size);
    /// used to evaluate sampled worlds.
    bits: Vec<Vec<BitSet>>,
    /// Words needed to store one answer-membership signature.
    sig_words: usize,
}

/// Keeps only witnesses not strictly containing another witness (the
/// minimality filter of `lineage_dnf`).
fn minimal(witnesses: BTreeSet<Vec<usize>>) -> Vec<Vec<usize>> {
    let all: Vec<Vec<usize>> = witnesses.into_iter().collect();
    let mut out = Vec::new();
    'outer: for (i, w) in all.iter().enumerate() {
        for (j, other) in all.iter().enumerate() {
            if i != j && other.len() < w.len() && other.iter().all(|x| w.contains(x)) {
                continue 'outer;
            }
        }
        out.push(w.clone());
    }
    out
}

impl CompiledQuery {
    /// Compiles `query` against `space`: one homomorphism search against the
    /// saturated instance, grouped by head answer.
    pub fn compile(query: &ConjunctiveQuery, space: &TupleSpace) -> CompiledQuery {
        let saturated = Instance::from_tuples(space.iter().cloned());
        let mut by_answer: BTreeMap<Answer, BTreeSet<Vec<usize>>> = BTreeMap::new();
        for hom in find_homomorphisms(query, &saturated) {
            let (Some(answer), Some(image)) = (hom.head_image(query), hom.body_image(query)) else {
                continue;
            };
            let mut indices: Vec<usize> = image.iter().filter_map(|t| space.index_of(t)).collect();
            indices.sort_unstable();
            indices.dedup();
            if indices.len() == image.len() {
                by_answer.entry(answer).or_default().insert(indices);
            }
        }
        let mut answers = Vec::with_capacity(by_answer.len());
        let mut witnesses = Vec::with_capacity(by_answer.len());
        for (answer, wits) in by_answer {
            answers.push(answer);
            witnesses.push(minimal(wits));
        }
        CompiledQuery::from_parts(answers, witnesses, space.len())
    }

    /// The compilation's portable parts — the sorted answers and their
    /// minimal witnesses. Everything else (`u64` masks, chunked bitsets,
    /// signature width) is derived, so [`CompiledQuery::from_parts`]
    /// rebuilds an identical compilation from these two lists plus the
    /// space size.
    pub fn export_parts(&self) -> (Vec<Answer>, Vec<Vec<Vec<usize>>>) {
        (self.answers.clone(), self.witnesses.clone())
    }

    /// Rebuilds a compilation from its portable parts against a space of
    /// `space_len` tuples, reconstructing the derived evaluation forms
    /// exactly as [`CompiledQuery::compile`] would.
    pub fn from_parts(
        answers: Vec<Answer>,
        witnesses: Vec<Vec<Vec<usize>>>,
        space_len: usize,
    ) -> CompiledQuery {
        let masks = (space_len <= 64).then(|| {
            witnesses
                .iter()
                .map(|per_answer| {
                    per_answer
                        .iter()
                        .map(|w| w.iter().fold(0u64, |m, &i| m | (1u64 << i)))
                        .collect()
                })
                .collect()
        });
        let bits = witnesses
            .iter()
            .map(|per_answer| {
                per_answer
                    .iter()
                    .map(|w| {
                        let mut b = BitSet::new(space_len);
                        for &i in w {
                            b.insert(i);
                        }
                        b
                    })
                    .collect()
            })
            .collect();
        let sig_words = answers.len().div_ceil(64);
        CompiledQuery {
            answers,
            witnesses,
            masks,
            bits,
            sig_words,
        }
    }

    /// The possible answers, sorted.
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// Approximate heap footprint of the compilation, for the kernel's
    /// byte-budgeted compile cache.
    pub fn approx_bytes(&self) -> usize {
        let answers: usize = self
            .answers
            .iter()
            .map(|a| 24 + std::mem::size_of_val(a.as_slice()))
            .sum();
        let witnesses: usize = self
            .witnesses
            .iter()
            .flat_map(|per_answer| per_answer.iter())
            .map(|w| 24 + 8 * w.len())
            .sum();
        let bits: usize = self
            .bits
            .iter()
            .flat_map(|per_answer| per_answer.iter())
            .map(|b| 32 + b.capacity().div_ceil(64) * 8)
            .sum();
        answers + witnesses + bits + std::mem::size_of::<Self>()
    }

    /// Number of possible answers.
    pub fn num_answers(&self) -> usize {
        self.answers.len()
    }

    /// The minimal witnesses of answer `i`, as sorted space-index lists.
    pub fn witnesses_of(&self, i: usize) -> &[Vec<usize>] {
        &self.witnesses[i]
    }

    /// `u64` words needed for this query's slice of a signature.
    pub fn sig_words(&self) -> usize {
        self.sig_words
    }

    /// Appends this query's answer-membership bits for the world `mask`
    /// onto `sig`: bit `i` is set iff answer `i` is in the query's answer
    /// set on that world.
    ///
    /// # Panics
    /// Panics if the space had more than 64 tuples (no mask form).
    pub fn push_answer_bits_mask(&self, mask: u64, sig: &mut Vec<u64>) {
        let masks = self
            .masks
            .as_ref()
            .expect("mask evaluation requires a space of at most 64 tuples");
        let base = sig.len();
        sig.resize(base + self.sig_words, 0);
        for (i, per_answer) in masks.iter().enumerate() {
            if per_answer.iter().any(|&w| w & !mask == 0) {
                sig[base + i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Appends this query's answer-membership bits for a sampled world given
    /// as a bitset over the same space.
    pub fn push_answer_bits_world(&self, world: &BitSet, sig: &mut Vec<u64>) {
        let base = sig.len();
        sig.resize(base + self.sig_words, 0);
        for (i, per_answer) in self.bits.iter().enumerate() {
            if per_answer.iter().any(|w| w.is_subset_of(world)) {
                sig[base + i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Whether answer `i` is marked present in this query's signature slice
    /// (`sig` must start at this query's first word).
    pub fn answer_bit(&self, sig: &[u64], i: usize) -> bool {
        sig[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Decodes this query's signature slice into the full answer set.
    pub fn decode(&self, sig: &[u64]) -> qvsec_cq::eval::AnswerSet {
        self.answers
            .iter()
            .enumerate()
            .filter(|(i, _)| self.answer_bit(sig, *i))
            .map(|(_, a)| a.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::eval::evaluate;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};

    fn setup() -> (Schema, Domain, TupleSpace) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, space)
    }

    #[test]
    fn compiled_answers_match_saturated_evaluation() {
        let (schema, mut domain, space) = setup();
        for text in [
            "V(x) :- R(x, y)",
            "S(y) :- R(x, y)",
            "Q() :- R('a', x), R(x, x)",
            "P(x, y) :- R(x, y), x != y",
        ] {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            let compiled = CompiledQuery::compile(&q, &space);
            let saturated = Instance::from_tuples(space.iter().cloned());
            let expected: Vec<Answer> = evaluate(&q, &saturated).into_iter().collect();
            assert_eq!(compiled.answers(), &expected[..], "{text}");
        }
    }

    #[test]
    fn mask_evaluation_matches_instance_evaluation_on_every_world() {
        let (schema, mut domain, space) = setup();
        let q = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let compiled = CompiledQuery::compile(&q, &space);
        for (mask, instance) in space.instances().unwrap() {
            let mut sig = Vec::new();
            compiled.push_answer_bits_mask(mask, &mut sig);
            let decoded = compiled.decode(&sig);
            assert_eq!(decoded, evaluate(&q, &instance), "world {mask:b}");
            // the bitset form agrees with the mask form
            let world = qvsec_data::bitset::BitSet::from_mask(space.len(), mask);
            let mut sig_b = Vec::new();
            compiled.push_answer_bits_world(&world, &mut sig_b);
            assert_eq!(sig, sig_b);
        }
    }

    #[test]
    fn boolean_queries_compile_to_a_single_conditional_answer() {
        let (schema, mut domain, space) = setup();
        let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
        let compiled = CompiledQuery::compile(&q, &space);
        assert_eq!(compiled.num_answers(), 1, "boolean: the empty answer");
        // Example 4.12: witnesses are {t0} and {t1, t3} in space order.
        let wits = compiled.witnesses_of(0);
        assert_eq!(wits.len(), 2);
        let sizes: Vec<usize> = wits.iter().map(|w| w.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn from_parts_rebuilds_an_identical_compilation() {
        let (schema, mut domain, space) = setup();
        let q = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let compiled = CompiledQuery::compile(&q, &space);
        let (answers, witnesses) = compiled.export_parts();
        let revived = CompiledQuery::from_parts(answers, witnesses, space.len());
        assert_eq!(revived.answers(), compiled.answers());
        assert_eq!(revived.sig_words(), compiled.sig_words());
        assert_eq!(revived.approx_bytes(), compiled.approx_bytes());
        for (mask, _) in space.instances().unwrap() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            compiled.push_answer_bits_mask(mask, &mut a);
            revived.push_answer_bits_mask(mask, &mut b);
            assert_eq!(a, b, "world {mask:b}");
            let world = qvsec_data::bitset::BitSet::from_mask(space.len(), mask);
            let mut c = Vec::new();
            revived.push_answer_bits_world(&world, &mut c);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn unsatisfiable_queries_compile_to_no_answers() {
        let (schema, mut domain, space) = setup();
        let q = parse_query("Q() :- R(x, x), x != x", &schema, &mut domain).unwrap();
        let compiled = CompiledQuery::compile(&q, &space);
        assert_eq!(compiled.num_answers(), 0);
        assert_eq!(compiled.sig_words(), 0);
        let mut sig = Vec::new();
        compiled.push_answer_bits_mask(0b1111, &mut sig);
        assert!(sig.is_empty());
        assert!(compiled.decode(&sig).is_empty());
    }
}
