//! The exact path: stream every world of the tuple space as a `u64` mask.
//!
//! The enumeration baseline materializes an [`qvsec_data::Instance`] per
//! world (one `BTreeSet` plus `n` tuple clones each) and runs a fresh
//! homomorphism search per query per world. The kernel instead walks the
//! `2^n` masks directly: a world's answer signature is a few witness-mask
//! containment tests, and its probability is either a popcount table lookup
//! (uniform dictionaries — the paper's `p = 1/2` models) or one product of
//! per-tuple factors. The independence, leakage and total-disclosure passes
//! are all served from the resulting **signature distribution**, so the
//! tuple space is enumerated exactly once per audit instead of once per
//! `(answer, view-answer)` pair.

use super::compile::CompiledQuery;
use super::montecarlo::SignatureCounts;
use super::stats::ProbStats;
use qvsec_data::bitset::MAX_ENUMERABLE;
use qvsec_data::{DataError, Dictionary, Ratio};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// The joint distribution of answer signatures: one entry per distinct
/// `(S(I), V̄(I))` outcome, keyed by the packed answer-membership bits of
/// every compiled query (secret first, then each view).
#[derive(Debug, Clone, Default)]
pub struct SignatureDistribution {
    /// Signature → accumulated probability mass (only positive masses).
    pub entries: HashMap<Vec<u64>, Ratio>,
}

impl SignatureDistribution {
    /// Total accumulated mass (1 for a dictionary without degenerate
    /// tuples; still 1 with them, since zero-probability worlds carry no
    /// mass).
    pub fn total_mass(&self) -> Ratio {
        self.entries.values().copied().sum()
    }
}

/// Per-world probability evaluation, with a popcount fast path for uniform
/// dictionaries.
enum MaskProbability {
    /// All tuples share one probability: `P[mask] = p^k (1-p)^(n-k)` depends
    /// only on the popcount `k`; the table holds all `n + 1` values.
    Uniform(Vec<Ratio>),
    /// General per-tuple probabilities (`probs[i]`, `complements[i]`).
    General(Vec<Ratio>, Vec<Ratio>),
}

impl MaskProbability {
    fn build(dict: &Dictionary) -> MaskProbability {
        let probs = dict.probabilities();
        if let Some(&first) = probs.first() {
            if probs.iter().all(|&p| p == first) {
                let n = probs.len();
                let q = first.complement();
                let table = (0..=n)
                    .map(|k| first.pow(k as u32) * q.pow((n - k) as u32))
                    .collect();
                return MaskProbability::Uniform(table);
            }
        }
        MaskProbability::General(
            probs.to_vec(),
            probs.iter().map(|p| p.complement()).collect(),
        )
    }

    fn of(&self, mask: u64) -> Ratio {
        match self {
            MaskProbability::Uniform(table) => table[mask.count_ones() as usize],
            MaskProbability::General(probs, complements) => {
                let mut p = Ratio::ONE;
                for (i, (&yes, &no)) in probs.iter().zip(complements).enumerate() {
                    p *= if mask & (1u64 << i) != 0 { yes } else { no };
                    if p.is_zero() {
                        return Ratio::ZERO;
                    }
                }
                p
            }
        }
    }
}

/// Streams every world of the dictionary's tuple space and accumulates the
/// signature distribution of the compiled queries. Worlds with zero
/// probability are skipped (they carry no mass). Errors if the space
/// exceeds [`MAX_ENUMERABLE`].
pub fn stream_exact(
    dict: &Dictionary,
    compiled: &[Arc<CompiledQuery>],
    stats: &ProbStats,
) -> Result<SignatureDistribution, DataError> {
    let n = dict.len();
    if n > MAX_ENUMERABLE {
        return Err(DataError::EnumerationTooLarge(n));
    }
    let worlds: u64 = 1u64 << n;
    let prob = MaskProbability::build(dict);

    // Fixed-size chunks of the mask range; each worker accumulates a local
    // map, merged below. Chunk count is independent of the thread count so
    // the arithmetic (hence the result) never depends on scheduling.
    let chunk_len: u64 = (worlds >> 6).clamp(1, 1 << 14);
    let chunks: Vec<u64> = (0..worlds.div_ceil(chunk_len)).collect();
    let partials: Vec<HashMap<Vec<u64>, Ratio>> = chunks
        .par_iter()
        .map(|&c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(worlds);
            let mut local: HashMap<Vec<u64>, Ratio> = HashMap::new();
            let mut sig = Vec::new();
            for mask in lo..hi {
                let p = prob.of(mask);
                if p.is_zero() {
                    continue;
                }
                sig.clear();
                for q in compiled {
                    q.push_answer_bits_mask(mask, &mut sig);
                }
                *local.entry(sig.clone()).or_insert(Ratio::ZERO) += p;
            }
            local
        })
        .collect();

    let mut out = SignatureDistribution::default();
    for partial in partials {
        for (sig, p) in partial {
            *out.entries.entry(sig).or_insert(Ratio::ZERO) += p;
        }
    }
    stats.add_exact_worlds(worlds);
    Ok(out)
}

/// Streams every world of a **uniform-mass** dictionary (all tuple
/// probabilities `1/2`, so every mask carries `2^-n`) and counts the
/// signature histogram — no `Ratio` arithmetic per world at all. The
/// resulting [`SignatureCounts`] with `total = 2^n` carries exactly the
/// information of [`stream_exact`]'s distribution (each mass is
/// `count / 2^n`); the packed-marginal analysis defers that normalization
/// to the reported entries. Chunking matches [`stream_exact`], so the
/// counts are independent of the worker-thread count.
pub fn stream_exact_counts(
    dict: &Dictionary,
    compiled: &[Arc<CompiledQuery>],
    stats: &ProbStats,
) -> Result<SignatureCounts, DataError> {
    let n = dict.len();
    if n > MAX_ENUMERABLE {
        return Err(DataError::EnumerationTooLarge(n));
    }
    debug_assert!(
        dict.probabilities().iter().all(|&p| p == Ratio::new(1, 2)),
        "count streaming requires uniform 1/2 tuple probabilities"
    );
    let worlds: u64 = 1u64 << n;
    let chunk_len: u64 = (worlds >> 6).clamp(1, 1 << 14);
    let chunks: Vec<u64> = (0..worlds.div_ceil(chunk_len)).collect();
    let partials: Vec<HashMap<Vec<u64>, u64>> = chunks
        .par_iter()
        .map(|&c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(worlds);
            let mut local: HashMap<Vec<u64>, u64> = HashMap::new();
            let mut sig = Vec::new();
            for mask in lo..hi {
                sig.clear();
                for q in compiled {
                    q.push_answer_bits_mask(mask, &mut sig);
                }
                *local.entry(sig.clone()).or_insert(0) += 1;
            }
            local
        })
        .collect();

    let mut out = SignatureCounts {
        counts: HashMap::new(),
        total: worlds,
    };
    for partial in partials {
        for (sig, c) in partial {
            *out.counts.entry(sig).or_insert(0) += c;
        }
    }
    stats.add_exact_worlds(worlds);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema, TupleSpace};

    #[test]
    fn uniform_and_general_probability_paths_agree() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let uniform = Dictionary::half(space.clone());
        let skewed = Dictionary::from_probabilities(
            space,
            vec![
                Ratio::new(1, 2),
                Ratio::new(1, 3),
                Ratio::new(2, 3),
                Ratio::ZERO,
            ],
        )
        .unwrap();
        let up = MaskProbability::build(&uniform);
        let gp = MaskProbability::build(&skewed);
        assert!(matches!(up, MaskProbability::Uniform(_)));
        assert!(matches!(gp, MaskProbability::General(..)));
        let mut total_u = Ratio::ZERO;
        let mut total_g = Ratio::ZERO;
        for mask in 0..16u64 {
            assert_eq!(up.of(mask), uniform.instance_probability_mask(mask));
            assert_eq!(gp.of(mask), skewed.instance_probability_mask(mask));
            total_u += up.of(mask);
            total_g += gp.of(mask);
        }
        assert!(total_u.is_one());
        assert!(total_g.is_one());
    }

    #[test]
    fn signature_distribution_mass_is_one() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space.clone());
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let compiled = vec![
            Arc::new(CompiledQuery::compile(&s, &space)),
            Arc::new(CompiledQuery::compile(&v, &space)),
        ];
        let stats = ProbStats::new();
        let dist = stream_exact(&dict, &compiled, &stats).unwrap();
        assert!(dist.total_mass().is_one());
        assert_eq!(stats.snapshot().exact_worlds_streamed, 16);
        assert!(!dist.entries.is_empty());
    }

    #[test]
    fn count_streaming_matches_the_mass_distribution() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space.clone());
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let compiled = vec![
            Arc::new(CompiledQuery::compile(&s, &space)),
            Arc::new(CompiledQuery::compile(&v, &space)),
        ];
        let stats = ProbStats::new();
        let dist = stream_exact(&dict, &compiled, &stats).unwrap();
        let counts = stream_exact_counts(&dict, &compiled, &stats).unwrap();
        assert_eq!(counts.total, 16);
        assert_eq!(counts.counts.len(), dist.entries.len());
        for (sig, &c) in &counts.counts {
            assert_eq!(
                dist.entries[sig],
                Ratio::new(c as i128, counts.total as i128),
                "mass of {sig:?}"
            );
        }
    }

    #[test]
    fn oversized_spaces_are_refused() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_size(6);
        let space = TupleSpace::full_with_cap(&schema, &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let stats = ProbStats::new();
        assert!(stream_exact(&dict, &[], &stats).is_err());
    }
}
