//! Lifetime counters of the probabilistic kernel.
//!
//! Mirrors the `CritStats` pattern of the `crit(Q)` kernel: the kernel
//! accumulates cheap atomic counters for its whole lifetime, and callers
//! (the `AuditEngine`, the bench harness) snapshot them to see *how* the
//! Probabilistic stage was served — how many worlds the exact path streamed,
//! how often the estimator cut over to Monte-Carlo, and how much sampling
//! work the shared pool saved.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe lifetime counters of a [`super::ProbKernel`].
#[derive(Debug, Default)]
pub struct ProbStats {
    samples_drawn: AtomicU64,
    samples_reused: AtomicU64,
    exact_worlds_streamed: AtomicU64,
    cutovers: AtomicU64,
    queries_compiled: AtomicU64,
    compile_cache_hits: AtomicU64,
    pool_columns_built: AtomicU64,
    pool_column_hits: AtomicU64,
    audit_memo_hits: AtomicU64,
}

impl ProbStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ProbStats::default()
    }

    pub(crate) fn add_samples_drawn(&self, n: u64) {
        self.samples_drawn.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_samples_reused(&self, n: u64) {
        self.samples_reused.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_exact_worlds(&self, n: u64) {
        self.exact_worlds_streamed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_cutover(&self) {
        self.cutovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_query_compiled(&self) {
        self.queries_compiled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_compile_hit(&self) {
        self.compile_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_pool_column_built(&self) {
        self.pool_columns_built.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_pool_column_hit(&self) {
        self.pool_column_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_audit_memo_hit(&self) {
        self.audit_memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ProbStatsSnapshot {
        ProbStatsSnapshot {
            samples_drawn: self.samples_drawn.load(Ordering::Relaxed),
            samples_reused: self.samples_reused.load(Ordering::Relaxed),
            exact_worlds_streamed: self.exact_worlds_streamed.load(Ordering::Relaxed),
            cutovers: self.cutovers.load(Ordering::Relaxed),
            queries_compiled: self.queries_compiled.load(Ordering::Relaxed),
            compile_cache_hits: self.compile_cache_hits.load(Ordering::Relaxed),
            pool_columns_built: self.pool_columns_built.load(Ordering::Relaxed),
            pool_column_hits: self.pool_column_hits.load(Ordering::Relaxed),
            audit_memo_hits: self.audit_memo_hits.load(Ordering::Relaxed),
            // The kernel folds its cache layers' eviction counters and
            // resident bytes in on top of this snapshot.
            evictions: 0,
            evicted_bytes: 0,
            resident_bytes: 0,
        }
    }
}

/// A serializable snapshot of [`ProbStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbStatsSnapshot {
    /// Worlds actually sampled into the shared pool (paid once per pool).
    pub samples_drawn: u64,
    /// Sampled worlds served from the shared pool instead of freshly drawn:
    /// one credit per pooled world per estimation pass after the first, so
    /// the independence, leakage and total-disclosure passes of one audit —
    /// and every later audit against the same dictionary — all count.
    pub samples_reused: u64,
    /// Worlds the exact path streamed as bit masks (`2^n` per exact audit).
    pub exact_worlds_streamed: u64,
    /// Number of audits that cut over from exact enumeration to Monte-Carlo
    /// because the tuple space exceeded the configured cutover.
    pub cutovers: u64,
    /// Witness-mask compilations actually run (one homomorphism search
    /// against the saturated instance each) — cache misses.
    #[serde(default)]
    pub queries_compiled: u64,
    /// Compilations served from the kernel's canonical-form memo instead of
    /// re-running the homomorphism search (republished views, later session
    /// steps, α-renamed queries).
    #[serde(default)]
    pub compile_cache_hits: u64,
    /// Per-query answer-bit columns evaluated over the shared pool (one
    /// pass of per-world witness tests each) — cache misses.
    #[serde(default)]
    pub pool_columns_built: u64,
    /// Column requests served from the memo: the query's pooled signatures
    /// were reused without touching a single world.
    #[serde(default)]
    pub pool_column_hits: u64,
    /// Whole audits served from the kernel's verdict memo: the exact
    /// `(secret, views)` canonical forms were evaluated before, so no
    /// world was streamed, sampled or re-analysed at all. Memoized audits
    /// deliberately count **no** cutover, world or sample-reuse traffic —
    /// the counters stay an honest record of computation performed.
    #[serde(default)]
    pub audit_memo_hits: u64,
    /// Compilations/columns evicted under the kernel's byte budgets.
    #[serde(default)]
    pub evictions: u64,
    /// Approximate bytes evicted over the kernel's lifetime.
    #[serde(default)]
    pub evicted_bytes: u64,
    /// Approximate bytes currently resident in the kernel caches (a gauge).
    #[serde(default)]
    pub resident_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ProbStats::new();
        assert_eq!(stats.snapshot(), ProbStatsSnapshot::default());
        stats.add_samples_drawn(10);
        stats.add_samples_reused(20);
        stats.add_exact_worlds(512);
        stats.add_cutover();
        stats.add_cutover();
        let snap = stats.snapshot();
        assert_eq!(snap.samples_drawn, 10);
        assert_eq!(snap.samples_reused, 20);
        assert_eq!(snap.exact_worlds_streamed, 512);
        assert_eq!(snap.cutovers, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProbStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
