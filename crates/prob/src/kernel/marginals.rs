//! Definition 4.1 marginals computed directly over packed signatures.
//!
//! The decoding analysis ([`super::ProbKernel`]'s `decode_baseline` path)
//! expands every distinct signature into `(AnswerSet, Vec<AnswerSet>)` keys
//! and walks the marginal pair grid over `BTreeMap`s of those heap-heavy
//! sets. This module computes the same verdict without materializing a
//! single `AnswerSet` until a violation is actually reported:
//!
//! * marginals are accumulated per packed **slice** (the secret's words,
//!   the concatenated view words) in one pass over the signature list;
//! * the pair grid is walked in *decoded order* via [`cmp_packed`], a
//!   comparator that reproduces the `BTreeSet<Answer>` lexicographic order
//!   straight from the bits (compiled answers are sorted, so bit index
//!   equals answer rank);
//! * with uniform world mass (the paper's `p = 1/2` dictionaries, and the
//!   Monte-Carlo pool) weights stay `u64` counts end to end — the
//!   independence test is one `u128` cross-multiplication per pair and the
//!   `Ratio` normalization (gcd) is deferred to the at-most-`cap` entries
//!   that survive;
//! * the violation sort is replaced by a bounded top-K selection whose
//!   output provably equals the head of the baseline's stable sort.
//!
//! Byte-identity of the resulting reports against the decoding baseline is
//! enforced by `tests/marginal_equivalence.rs`.

use super::compile::CompiledQuery;
use super::{significant_f64, view_combos, KernelLeakEntry, KernelLeakage};
use crate::independence::{IndependenceReport, Violation};
use qvsec_data::Ratio;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Compares two equal-width packed answer slices in the order of their
/// *decoded* `BTreeSet<Answer>`s (set-lexicographic over ascending answer
/// rank). Compiled answers are sorted, so the i-th bit is the i-th smallest
/// answer; the sets agree below the lowest differing bit `d`, whose holder
/// contributes `d` where the other side contributes either its next member
/// above `d` (larger) or nothing (exhausted, hence smaller).
pub(crate) fn cmp_packed(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for w in 0..a.len() {
        if a[w] != b[w] {
            let d = (a[w] ^ b[w]).trailing_zeros();
            let a_holds = a[w] & (1u64 << d) != 0;
            let counter = if a_holds { b } else { a };
            let above_mask = !((1u64 << d) | ((1u64 << d) - 1));
            let counter_has_above =
                counter[w] & above_mask != 0 || counter[w + 1..].iter().any(|&word| word != 0);
            let holder = if counter_has_above {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            return if a_holds { holder } else { holder.reverse() };
        }
    }
    Ordering::Equal
}

/// Compares two concatenated view parts per view slice, in view order —
/// the packed equivalent of `Vec<AnswerSet>` lexicographic comparison.
fn cmp_view_parts(a: &[u64], b: &[u64], widths: &[usize]) -> Ordering {
    let mut at = 0;
    for &w in widths {
        match cmp_packed(&a[at..at + w], &b[at..at + w]) {
            Ordering::Equal => at += w,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Distinct secret slices and view parts of a signature list, sorted in
/// decoded order, with rank lookup maps.
struct PackedIndex<'a> {
    secrets: Vec<&'a [u64]>,
    views: Vec<&'a [u64]>,
    secret_rank: HashMap<&'a [u64], u32>,
    view_rank: HashMap<&'a [u64], u32>,
}

fn build_index<'a, W>(entries: &[(&'a [u64], W)], offsets: &[usize]) -> PackedIndex<'a> {
    let split = offsets[1];
    let widths: Vec<usize> = offsets[1..].windows(2).map(|w| w[1] - w[0]).collect();
    let mut secret_rank: HashMap<&[u64], u32> = HashMap::new();
    let mut view_rank: HashMap<&[u64], u32> = HashMap::new();
    for (sig, _) in entries {
        let (s, v) = sig.split_at(split);
        secret_rank.entry(s).or_insert(0);
        view_rank.entry(v).or_insert(0);
    }
    let mut secrets: Vec<&[u64]> = secret_rank.keys().copied().collect();
    secrets.sort_unstable_by(|a, b| cmp_packed(a, b));
    let mut views: Vec<&[u64]> = view_rank.keys().copied().collect();
    views.sort_unstable_by(|a, b| cmp_view_parts(a, b, &widths));
    for (i, s) in secrets.iter().enumerate() {
        secret_rank.insert(s, i as u32);
    }
    for (i, v) in views.iter().enumerate() {
        view_rank.insert(v, i as u32);
    }
    PackedIndex {
        secrets,
        views,
        secret_rank,
        view_rank,
    }
}

/// `|posterior − prior|` as an unreduced non-negative fraction; ordering by
/// cross-multiplication is exact and allocation-free. Safe for totals up to
/// `2^31` (numerator and denominator then fit `2^62`, products `2^124`).
#[derive(Clone, Copy)]
struct FracKey {
    num: u128,
    den: u128,
}

impl Ord for FracKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl PartialOrd for FracKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for FracKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for FracKey {}

/// One violating pair: its sort key, emission index (for the stable
/// tie-break) and marginal ranks (for lazy materialization). `Ord` is
/// "better first": larger key, then earlier emission.
struct Cand<K> {
    key: K,
    idx: u32,
    s: u32,
    v: u32,
}

impl<K: Ord> Ord for Cand<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl<K: Ord> PartialOrd for Cand<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> PartialEq for Cand<K> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<K: Ord> Eq for Cand<K> {}

/// Collects violating pairs, keeping either everything (`cap = None`) or a
/// bounded top-K whose final order equals the head of the baseline's
/// stable `sort_by_key(Reverse(key))` over emission order.
struct TopViolations<K: Ord + Copy> {
    cap: Option<usize>,
    all: Vec<Cand<K>>,
    heap: BinaryHeap<Reverse<Cand<K>>>,
    total: usize,
}

impl<K: Ord + Copy> TopViolations<K> {
    fn new(cap: Option<usize>) -> Self {
        TopViolations {
            cap,
            all: Vec::new(),
            heap: BinaryHeap::new(),
            total: 0,
        }
    }

    fn push(&mut self, key: K, s: u32, v: u32) {
        let cand = Cand {
            key,
            idx: self.total as u32,
            s,
            v,
        };
        self.total += 1;
        match self.cap {
            None => self.all.push(cand),
            Some(cap) => {
                if self.heap.len() < cap {
                    self.heap.push(Reverse(cand));
                } else if let Some(worst) = self.heap.peek() {
                    if cand > worst.0 {
                        self.heap.pop();
                        self.heap.push(Reverse(cand));
                    }
                }
            }
        }
    }

    /// The kept candidates, best first (identical to the first
    /// `min(cap, total)` entries of the baseline's stable sort).
    fn into_sorted(self) -> (Vec<Cand<K>>, usize) {
        let total = self.total;
        let sorted = match self.cap {
            None => {
                let mut all = self.all;
                all.sort_by_key(|c| Reverse((c.key, Reverse(c.idx))));
                all
            }
            Some(_) => self
                .heap
                .into_sorted_vec()
                .into_iter()
                .map(|r| r.0)
                .collect(),
        };
        (sorted, total)
    }
}

/// Joint-weight lookup: a dense rank-by-rank matrix up to this many cells,
/// a hash map beyond it.
const DENSE_LIMIT: usize = 1 << 22;

enum Joint<W> {
    Dense(Vec<W>, usize),
    Sparse(HashMap<(u32, u32), W>),
}

impl<W: Copy + Default + std::ops::AddAssign> Joint<W> {
    fn build<'a>(entries: &[(&'a [u64], W)], index: &PackedIndex<'a>, split: usize) -> Joint<W> {
        let (ns, nv) = (index.secrets.len(), index.views.len());
        if ns.saturating_mul(nv) <= DENSE_LIMIT {
            let mut cells = vec![W::default(); ns * nv];
            for (sig, w) in entries {
                let (s, v) = sig.split_at(split);
                let si = index.secret_rank[s] as usize;
                let vi = index.view_rank[v] as usize;
                cells[si * nv + vi] += *w;
            }
            Joint::Dense(cells, nv)
        } else {
            let mut cells: HashMap<(u32, u32), W> = HashMap::new();
            for (sig, w) in entries {
                let (s, v) = sig.split_at(split);
                *cells
                    .entry((index.secret_rank[s], index.view_rank[v]))
                    .or_default() += *w;
            }
            Joint::Sparse(cells)
        }
    }

    fn get(&self, s: u32, v: u32) -> W {
        match self {
            Joint::Dense(cells, nv) => cells[s as usize * nv + v as usize],
            Joint::Sparse(cells) => cells.get(&(s, v)).copied().unwrap_or_default(),
        }
    }
}

fn materialize_violations<K: Ord + Copy>(
    kept: Vec<Cand<K>>,
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    index: &PackedIndex<'_>,
    ratios: impl Fn(u32, u32) -> (Ratio, Ratio),
) -> Vec<Violation> {
    let widths: Vec<usize> = offsets[1..].windows(2).map(|w| w[1] - w[0]).collect();
    kept.into_iter()
        .map(|c| {
            let (prior, posterior) = ratios(c.s, c.v);
            let view_part = index.views[c.v as usize];
            let mut at = 0;
            let view_answers = compiled[1..]
                .iter()
                .zip(&widths)
                .map(|(q, &w)| {
                    let ans = q.decode(&view_part[at..at + w]);
                    at += w;
                    ans
                })
                .collect();
            Violation {
                query_answer: compiled[0].decode(index.secrets[c.s as usize]),
                view_answers,
                prior,
                posterior,
            }
        })
        .collect()
}

/// The Definition 4.1 independence verdict from **count** weights (uniform
/// world mass: the exact path over an all-`1/2` dictionary with `total =
/// 2^n`, or the Monte-Carlo pool with `total = |pool|`). With `mc_filter`
/// the 3σ significance test of the Monte-Carlo baseline is applied, on the
/// bit-identical `f64`s (`to_f64` of a reduced `a/b` and plain `c/n`
/// division agree: IEEE division of the same rational rounds identically).
pub(crate) fn independence_packed_counts(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    entries: &[(&[u64], u64)],
    total: u64,
    mc_filter: bool,
    cap: Option<usize>,
) -> IndependenceReport {
    assert!(total <= 1 << 31, "count totals above 2^31 are unsupported");
    let split = offsets[1];
    let index = build_index(entries, offsets);
    let mut secret_mass = vec![0u64; index.secrets.len()];
    let mut view_mass = vec![0u64; index.views.len()];
    for (sig, c) in entries {
        let (s, v) = sig.split_at(split);
        secret_mass[index.secret_rank[s] as usize] += c;
        view_mass[index.view_rank[v] as usize] += c;
    }
    let joint = Joint::<u64>::build(entries, &index, split);

    let n_f = total as f64;
    let mut top = TopViolations::new(cap);
    let mut pairs = 0usize;
    for (si, &c_s) in secret_mass.iter().enumerate() {
        for (vi, &c_v) in view_mass.iter().enumerate() {
            pairs += 1;
            let c_j = joint.get(si as u32, vi as u32);
            // posterior != prior  ⟺  c_j/c_v != c_s/total, cross-multiplied.
            let lhs = c_j as u128 * total as u128;
            let rhs = c_s as u128 * c_v as u128;
            if lhs == rhs {
                continue;
            }
            if mc_filter
                && !significant_f64(c_s as f64 / n_f, c_j as f64 / c_v as f64, n_f, c_v as f64)
            {
                continue;
            }
            top.push(
                FracKey {
                    num: lhs.abs_diff(rhs),
                    den: c_v as u128 * total as u128,
                },
                si as u32,
                vi as u32,
            );
        }
    }
    let (kept, violating) = top.into_sorted();
    let violations = materialize_violations(kept, compiled, offsets, &index, |s, v| {
        (
            Ratio::new(secret_mass[s as usize] as i128, total as i128),
            Ratio::new(joint.get(s, v) as i128, view_mass[v as usize] as i128),
        )
    });
    IndependenceReport {
        independent: violating == 0,
        violations,
        pairs_checked: pairs,
    }
}

/// The Definition 4.1 independence verdict from exact **mass** weights
/// (general dictionaries on the exact path). Same walk as the count path,
/// with `Ratio` marginals and `(posterior − prior).abs()` sort keys.
pub(crate) fn independence_packed_masses(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    entries: &[(&[u64], Ratio)],
    cap: Option<usize>,
) -> IndependenceReport {
    let split = offsets[1];
    let index = build_index(entries, offsets);
    let mut secret_mass = vec![Ratio::ZERO; index.secrets.len()];
    let mut view_mass = vec![Ratio::ZERO; index.views.len()];
    let mut total = Ratio::ZERO;
    for (sig, p) in entries {
        let (s, v) = sig.split_at(split);
        secret_mass[index.secret_rank[s] as usize] += *p;
        view_mass[index.view_rank[v] as usize] += *p;
        total += *p;
    }
    let joint = Joint::<Ratio>::build(entries, &index, split);

    let mut top = TopViolations::new(cap);
    let mut pairs = 0usize;
    let mut priors = Vec::with_capacity(index.secrets.len());
    for &p_s in &secret_mass {
        priors.push(p_s / total);
    }
    let posterior_of = |s: u32, v: u32| joint.get(s, v) / view_mass[v as usize];
    for (si, prior) in priors.iter().copied().enumerate() {
        for (vi, p_v) in view_mass.iter().enumerate() {
            if p_v.is_zero() {
                continue;
            }
            pairs += 1;
            let posterior = posterior_of(si as u32, vi as u32);
            if posterior != prior {
                top.push((posterior - prior).abs(), si as u32, vi as u32);
            }
        }
    }
    let (kept, violating) = top.into_sorted();
    let violations = materialize_violations(kept, compiled, offsets, &index, |s, v| {
        (priors[s as usize], joint.get(s, v) / view_mass[v as usize])
    });
    IndependenceReport {
        independent: violating == 0,
        violations,
        pairs_checked: pairs,
    }
}

/// The Section 6.1 leakage measure from **count** weights: the one-walk
/// aggregation of [`super::ProbKernel`]'s signature leakage with plain
/// `u64` accumulators, `Ratio`s built only for the (few) `(answer, combo)`
/// pairs. Emission stays answer-major, so the stable sort tie-breaks
/// identically to the mass-weighted baseline.
pub(crate) fn leakage_packed_counts(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    entries: &[(&[u64], u64)],
    total: u64,
    mc_filter: bool,
    cap: Option<usize>,
) -> KernelLeakage {
    let secret = &compiled[0];
    let views = &compiled[1..];
    let m_s = secret.num_answers();
    let combos = view_combos(views);
    let combo_matches = |sig: &[u64], combo: &[usize]| {
        views
            .iter()
            .zip(combo)
            .zip(offsets[1..].windows(2))
            .all(|((v, &a), w)| v.answer_bit(&sig[w[0]..w[1]], a))
    };

    let mut priors = vec![0u64; m_s];
    let mut cond = vec![0u64; combos.len()];
    let mut joint = vec![0u64; m_s * combos.len()];
    for (sig, c) in entries {
        let slice = &sig[offsets[0]..offsets[1]];
        let set_bits = |f: &mut dyn FnMut(usize)| {
            for (wi, &word) in slice.iter().enumerate() {
                let mut b = word;
                while b != 0 {
                    f(wi * 64 + b.trailing_zeros() as usize);
                    b &= b - 1;
                }
            }
        };
        set_bits(&mut |i| priors[i] += c);
        for (ci, combo) in combos.iter().enumerate() {
            if combo_matches(sig, combo) {
                cond[ci] += c;
                set_bits(&mut |i| joint[i * combos.len() + ci] += c);
            }
        }
    }

    struct Positive {
        answer: usize,
        combo: usize,
        prior: Ratio,
        posterior: Ratio,
        relative: Ratio,
    }
    let mut report = KernelLeakage::default();
    let mut positives: Vec<Positive> = Vec::new();
    for (i, &c_prior) in priors.iter().enumerate() {
        if c_prior == 0 {
            continue;
        }
        let prior = Ratio::new(c_prior as i128, total as i128);
        for (ci, _) in combos.iter().enumerate() {
            report.pairs_checked += 1;
            let c_cond = cond[ci];
            if c_cond == 0 {
                continue;
            }
            let posterior = Ratio::new(joint[i * combos.len() + ci] as i128, c_cond as i128);
            let relative = (posterior - prior) / prior;
            let include = if mc_filter {
                relative > Ratio::ZERO
                    && significant_f64(
                        prior.to_f64(),
                        posterior.to_f64(),
                        total as f64,
                        (Ratio::new(c_cond as i128, total as i128).to_f64() * total as f64)
                            .max(1.0),
                    )
            } else {
                relative > Ratio::ZERO
            };
            if include {
                positives.push(Positive {
                    answer: i,
                    combo: ci,
                    prior,
                    posterior,
                    relative,
                });
            }
        }
    }
    positives.sort_by_key(|p| Reverse(p.relative));
    let materialize = |p: &Positive| KernelLeakEntry {
        query_answer: secret.answers()[p.answer].clone(),
        view_answers: views
            .iter()
            .zip(&combos[p.combo])
            .map(|(v, &a)| v.answers()[a].clone())
            .collect(),
        prior: p.prior,
        posterior: p.posterior,
        relative_increase: p.relative,
    };
    if let Some(head) = positives.first() {
        report.max_leak = head.relative;
        report.witness = Some(materialize(head));
    }
    let keep = cap.unwrap_or(usize::MAX).min(positives.len());
    report.positive_entries = positives[..keep].iter().map(materialize).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::eval::AnswerSet;

    /// Decodes a slice over `n` synthetic single-value answers, mirroring
    /// how compiled bit ranks map onto sorted answers.
    fn decode_set(slice: &[u64], n: usize) -> AnswerSet {
        (0..n)
            .filter(|i| slice[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|i| vec![qvsec_data::Value(i as u32)])
            .collect()
    }

    #[test]
    fn packed_order_matches_decoded_btreeset_order_exhaustively() {
        // Every pair of 6-bit subsets, single word.
        for a in 0u64..64 {
            for b in 0u64..64 {
                let (sa, sb) = (decode_set(&[a], 6), decode_set(&[b], 6));
                assert_eq!(cmp_packed(&[a], &[b]), sa.cmp(&sb), "a={a:b} b={b:b}");
            }
        }
    }

    #[test]
    fn packed_order_matches_decoded_order_across_word_boundaries() {
        // 70-answer space: bits spill into a second word.
        let patterns: Vec<[u64; 2]> = vec![
            [0, 0],
            [1, 0],
            [1 << 63, 0],
            [0, 1],
            [0, 3],
            [u64::MAX, 0],
            [u64::MAX, 0x3f],
            [1 << 63, 1],
            [5, 2],
            [4, 2],
        ];
        for a in &patterns {
            for b in &patterns {
                let (sa, sb) = (decode_set(a, 70), decode_set(b, 70));
                assert_eq!(cmp_packed(a, b), sa.cmp(&sb), "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn frac_key_orders_like_exact_fractions() {
        let k = |num: u128, den: u128| FracKey { num, den };
        assert!(k(1, 3) < k(1, 2));
        assert!(k(2, 4) == k(1, 2));
        assert!(k(3, 4) > k(2, 3));
        assert!(k(0, 7) == k(0, 9));
    }

    #[test]
    fn top_k_selection_equals_the_stable_sort_head() {
        // Keys with many ties: the kept list must match the first K of a
        // stable descending sort over emission order.
        let keys: Vec<u64> = vec![5, 3, 5, 1, 4, 5, 3, 2, 4, 5, 0, 4];
        for cap in 0..keys.len() + 2 {
            let mut capped = TopViolations::new(Some(cap));
            let mut full = TopViolations::new(None);
            for (i, &k) in keys.iter().enumerate() {
                capped.push(k, i as u32, 0);
                full.push(k, i as u32, 0);
            }
            let (kept, total) = capped.into_sorted();
            let (all, _) = full.into_sorted();
            assert_eq!(total, keys.len());
            let want: Vec<(u64, u32)> = all.iter().take(cap).map(|c| (c.key, c.idx)).collect();
            let got: Vec<(u64, u32)> = kept.iter().map(|c| (c.key, c.idx)).collect();
            assert_eq!(got, want, "cap {cap}");
        }
    }
}
