//! The entropy-based alternative model of security (Section 2.3).
//!
//! The paper notes that query-view security *could* be phrased in terms of
//! Shannon entropy: comparing `H(S)` with the conditional entropy `H(S | V̄)`
//! aggregates over answers and yields a **strictly weaker** criterion than
//! Definition 4.1 — mutual information `I(S; V̄) = 0` is equivalent to
//! statistical independence, but small positive mutual information can hide
//! large per-answer probability shifts. This module implements the
//! entropy view so that the comparison the paper sketches can actually be
//! run (see the unit tests and the EXPERIMENTS.md entry):
//!
//! * `H(S)`, `H(V̄)`, `H(S, V̄)`, `H(S | V̄)` over a dictionary, in bits,
//! * mutual information `I(S; V̄) = H(S) − H(S | V̄)`, and
//! * the per-answer entropy comparison that *is* equivalent to
//!   Definition 4.1.

use crate::probability::{joint_distribution, JointDistribution};
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Ratio, Result};

/// Entropies (in bits) of the secret, the views, and their interaction under
/// a dictionary.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyReport {
    /// `H(S)`: entropy of the secret query's answer.
    pub query_entropy: f64,
    /// `H(V̄)`: entropy of the views' answers.
    pub views_entropy: f64,
    /// `H(S, V̄)`: joint entropy.
    pub joint_entropy: f64,
    /// `H(S | V̄) = H(S, V̄) − H(V̄)`.
    pub conditional_entropy: f64,
    /// `I(S; V̄) = H(S) − H(S | V̄)` (non-negative up to rounding).
    pub mutual_information: f64,
}

fn h(probabilities: impl Iterator<Item = Ratio>) -> f64 {
    probabilities
        .map(|p| p.to_f64())
        .filter(|&p| p > 0.0)
        .map(|p| -p * p.log2())
        .sum()
}

fn report_from_joint(joint: &JointDistribution) -> EntropyReport {
    let mass = joint.total_mass;
    let normalise = |p: Ratio| p / mass;
    let query_entropy = h(joint.marginal_query().values().map(|&p| normalise(p)));
    let views_entropy = h(joint.marginal_views().values().map(|&p| normalise(p)));
    let joint_entropy = h(joint.iter().map(|(_, p)| normalise(p)));
    let conditional_entropy = joint_entropy - views_entropy;
    EntropyReport {
        query_entropy,
        views_entropy,
        joint_entropy,
        conditional_entropy,
        mutual_information: query_entropy - conditional_entropy,
    }
}

/// Computes the entropy report of `(S, V̄)` under a dictionary.
pub fn entropy_report(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<EntropyReport> {
    let joint = joint_distribution(secret, views, dict, |_| true)?;
    Ok(report_from_joint(&joint))
}

/// Computes the entropy report conditioned on prior knowledge (instances not
/// satisfying the predicate are discarded and the distribution renormalised).
pub fn entropy_report_given<F>(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    prior: F,
) -> Result<EntropyReport>
where
    F: FnMut(&qvsec_data::Instance) -> bool,
{
    let joint = joint_distribution(secret, views, dict, prior)?;
    Ok(report_from_joint(&joint))
}

impl EntropyReport {
    /// Whether the aggregate (entropy) criterion considers the pair secure:
    /// `I(S; V̄) ≈ 0` up to the given tolerance in bits.
    ///
    /// Zero mutual information is *equivalent* to Definition 4.1 security,
    /// but thresholding a small positive value (as an aggregate criterion in
    /// practice would) is strictly weaker: it can accept pairs with large
    /// per-answer disclosures of low-probability secrets — exactly the
    /// weakness Section 2.3 warns about.
    pub fn aggregate_secure(&self, tolerance_bits: f64) -> bool {
        self.mutual_information.abs() <= tolerance_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::check_independence;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        (schema, domain, dict)
    }

    #[test]
    fn independent_pairs_have_zero_mutual_information() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let report = entropy_report(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(
            report.mutual_information.abs() < 1e-9,
            "I = {}",
            report.mutual_information
        );
        assert!(report.aggregate_secure(1e-9));
        // S ranges over 4 equally likely answer sets (subsets of {a, b}
        // restricted by the two tuples R(a,a), R(b,a)): H(S) = 2 bits.
        assert!((report.query_entropy - 2.0).abs() < 1e-9);
        // H(S | V) = H(S) when independent
        assert!((report.conditional_entropy - report.query_entropy).abs() < 1e-9);
    }

    #[test]
    fn dependent_pairs_have_positive_mutual_information() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let report = entropy_report(&s, &ViewSet::single(v.clone()), &dict).unwrap();
        assert!(
            report.mutual_information > 0.05,
            "I = {}",
            report.mutual_information
        );
        assert!(!report.aggregate_secure(1e-3));
        // sanity: the exact independence check agrees that the pair is dependent
        assert!(
            !check_independence(&s, &ViewSet::single(v), &dict)
                .unwrap()
                .independent
        );
        // information-theoretic identities hold
        assert!(report.joint_entropy <= report.query_entropy + report.views_entropy + 1e-9);
        assert!(report.conditional_entropy <= report.query_entropy + 1e-9);
    }

    #[test]
    fn aggregate_criterion_is_weaker_than_per_answer_security() {
        // Section 2.3's warning, made concrete: a rare but total disclosure.
        // The view V() :- R('a','a'), R('a','b'), R('b','a'), R('b','b') is
        // true only when all four tuples are present (probability 1/16), and
        // then it pins down the secret completely. Mutual information is
        // small (≈ 0.34 bits, far below H(S) = 2 bits), so an aggregate
        // threshold of, say, half a bit accepts the pair — while the exact
        // per-answer criterion correctly rejects it.
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query(
            "V() :- R('a','a'), R('a','b'), R('b','a'), R('b','b')",
            &schema,
            &mut domain,
        )
        .unwrap();
        let report = entropy_report(&s, &ViewSet::single(v.clone()), &dict).unwrap();
        assert!(report.mutual_information > 0.0);
        assert!(
            report.mutual_information < 0.5,
            "the aggregate signal is small: {}",
            report.mutual_information
        );
        assert!(
            report.aggregate_secure(0.5),
            "the aggregate criterion accepts the pair"
        );
        let exact = check_independence(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(
            !exact.independent,
            "but the per-answer criterion rejects it"
        );
        let worst = exact.worst_violation().unwrap();
        assert!(
            worst.posterior.is_one(),
            "observing V pins the secret completely"
        );
    }

    #[test]
    fn conditioning_on_knowledge_reduces_entropy() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let t_aa = qvsec_data::Tuple::new(r, vec![a, a]);
        let unconditional = entropy_report(&s, &ViewSet::single(v.clone()), &dict).unwrap();
        let conditional =
            entropy_report_given(&s, &ViewSet::single(v), &dict, |i| i.contains(&t_aa)).unwrap();
        assert!(conditional.query_entropy < unconditional.query_entropy);
    }

    #[test]
    fn entropy_of_a_deterministic_view_is_zero() {
        let (schema, mut domain, _) = setup();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        // all tuples certainly present: every query answer is deterministic
        let dict = Dictionary::uniform(space, Ratio::ONE).unwrap();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let report = entropy_report(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(report.query_entropy.abs() < 1e-12);
        assert!(report.views_entropy.abs() < 1e-12);
        assert!(report.mutual_information.abs() < 1e-12);
    }
}
