//! # qvsec-prob — exact probability engine
//!
//! This crate turns the probabilistic definitions of the paper into
//! executable, exact procedures:
//!
//! * the probability of an instance and of a query answer under a
//!   tuple-independent dictionary — Eqs. (1) and (2) ([`probability`]),
//! * the joint distribution of `(S(I), V̄(I))` over all instances of a small
//!   tuple space and the literal Definition 4.1 independence test
//!   ([`independence`]),
//! * the event polynomials `f_Q(x̄)` of Section 4.3 as exact sparse
//!   polynomials, together with the properties of Proposition 4.13
//!   ([`poly`]),
//! * lineage (supporting tuple sets and DNF witnesses) used to build reduced
//!   tuple spaces and asymptotic estimates ([`lineage`]),
//! * Monte-Carlo estimators for dictionaries too large for exhaustive
//!   enumeration ([`montecarlo`]), and
//! * the **shared-sample probabilistic kernel** ([`kernel`]): the scalable
//!   path behind the engine's `Probabilistic` stage — exact mask streaming
//!   with an automatic cutover to batched Monte-Carlo over a seeded sample
//!   pool reused across passes and audits.
//!
//! All exact computations use the [`qvsec_data::Ratio`] rational type, so the
//! numbers of the paper's worked examples (`3/16`, `1/3`, `1/4`, ...) are
//! reproduced bit-for-bit rather than approximately.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod entropy;
pub mod independence;
pub mod kernel;
pub mod lineage;
pub mod montecarlo;
pub mod poly;
pub mod probability;

pub use entropy::{entropy_report, EntropyReport};
pub use independence::{
    check_independence, check_independence_given, IndependenceReport, Violation,
};
pub use kernel::{
    EstimatorMode, EstimatorReport, KernelAudit, KernelConfig, KernelLeakEntry, KernelLeakage,
    ProbKernel, ProbStats, ProbStatsSnapshot, SamplePool, NS_KERNEL_COLUMNS, NS_KERNEL_COMPILE,
};
pub use lineage::{for_each_grounding, lineage_dnf, support_space, support_tuples};
pub use montecarlo::MonteCarloEstimator;
pub use poly::{event_polynomial, from_satisfying, Monomial, Polynomial};
pub use probability::{
    answer_distribution, boolean_probability, conditional_probability, event_probability,
    joint_distribution, JointDistribution,
};
