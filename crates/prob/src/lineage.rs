//! Lineage: which tuples can influence a query, and how.
//!
//! Two notions are provided:
//!
//! * **Support tuples** — every ground instantiation of a subgoal of a query
//!   over a domain. Any tuple outside the support can never be critical for
//!   the query (a critical tuple must be a homomorphic image of a subgoal,
//!   Section 4.2), and adding or removing it never changes the query's
//!   answer. Support sets let the exhaustive procedures work over a reduced
//!   [`TupleSpace`] instead of the full `tup(D)`.
//! * **DNF lineage** — the minimal witnesses of a boolean query: each
//!   homomorphism of the query into the "saturated" instance (all support
//!   tuples present) contributes the conjunction of its image tuples; the
//!   query is true on `I` iff some witness is contained in `I`. This is the
//!   DNF form used in Example 4.12 (`Q = t1 ∨ (t2 ∧ t4)`).

use qvsec_cq::homomorphism::find_homomorphisms;
use qvsec_cq::{Atom, ConjunctiveQuery, Term};
use qvsec_data::{DataError, Domain, Instance, Result, Tuple, TupleSpace, Value};
use std::collections::BTreeSet;

/// Streams every ground instantiation of a single atom over the domain into
/// `f`, reusing **one** value buffer — no heap `Tuple` is allocated per
/// grounding. Downstream passes that only need to *classify* a grounding
/// (symmetry-pattern grouping, counting) consume the borrowed slice
/// directly; passes that keep a grounding materialize it themselves.
///
/// `f` returns `true` to continue and `false` to stop the enumeration early
/// (e.g. when a candidate cap is exceeded).
pub fn for_each_grounding(atom: &Atom, domain: &Domain, mut f: impl FnMut(&[Value]) -> bool) {
    let vars = atom.variables();
    let values: Vec<Value> = domain.values().collect();
    if values.is_empty() && !vars.is_empty() {
        return;
    }
    // Per position: the fixed constant, or the index of the driving variable
    // in the mixed-radix counter.
    let slots: Vec<std::result::Result<Value, usize>> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Ok(*c),
            Term::Var(v) => Err(vars.iter().position(|x| x == v).expect("var of this atom")),
        })
        .collect();
    let mut counters = vec![0usize; vars.len()];
    let mut buf: Vec<Value> = vec![Value(0); atom.terms.len()];
    loop {
        for (out, slot) in buf.iter_mut().zip(&slots) {
            *out = match slot {
                Ok(c) => *c,
                Err(j) => values[counters[*j]],
            };
        }
        if !f(&buf) {
            return;
        }
        // increment mixed-radix counter
        let mut i = vars.len();
        let mut done = vars.is_empty();
        while i > 0 {
            i -= 1;
            counters[i] += 1;
            if counters[i] < values.len() {
                break;
            }
            counters[i] = 0;
            if i == 0 {
                done = true;
            }
        }
        if done {
            break;
        }
    }
}

/// All ground instantiations of a single atom over the domain, materialized
/// (the streaming form is [`for_each_grounding`]).
pub fn atom_groundings(atom: &Atom, domain: &Domain) -> Vec<Tuple> {
    let mut out = Vec::new();
    for_each_grounding(atom, domain, |values| {
        out.push(Tuple::new(atom.relation, values.to_vec()));
        true
    });
    out
}

/// All support tuples of a set of queries over a domain: the union of the
/// ground instantiations of every subgoal.
pub fn support_tuples(queries: &[&ConjunctiveQuery], domain: &Domain) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for q in queries {
        for atom in &q.atoms {
            out.extend(atom_groundings(atom, domain));
        }
    }
    out
}

/// Builds a reduced [`TupleSpace`] containing exactly the support tuples of
/// the given queries over the domain, refusing if it exceeds `cap`.
pub fn support_space(
    queries: &[&ConjunctiveQuery],
    domain: &Domain,
    cap: usize,
) -> Result<TupleSpace> {
    let tuples = support_tuples(queries, domain);
    if tuples.len() > cap {
        return Err(DataError::TupleSpaceTooLarge {
            required: tuples.len() as u128,
            cap,
        });
    }
    Ok(TupleSpace::from_tuples(tuples.into_iter().collect()))
}

/// The DNF lineage of a boolean query over a tuple space: the set of minimal
/// witness instances (each given as a sorted vector of space indices).
///
/// The query is true on an instance `I ⊆ space` iff some witness is a subset
/// of `I`. Witnesses are returned with subsumed (non-minimal) witnesses
/// removed.
pub fn lineage_dnf(query: &ConjunctiveQuery, space: &TupleSpace) -> Vec<Vec<usize>> {
    // Saturate: evaluate the query over the instance containing every tuple
    // of the space; each homomorphism's body image is a witness.
    let saturated = Instance::from_tuples(space.iter().cloned());
    let mut witnesses: BTreeSet<Vec<usize>> = BTreeSet::new();
    for hom in find_homomorphisms(query, &saturated) {
        if let Some(image) = hom.body_image(query) {
            let mut indices: Vec<usize> = image.iter().filter_map(|t| space.index_of(t)).collect();
            indices.sort_unstable();
            indices.dedup();
            if indices.len() == image.len() {
                witnesses.insert(indices);
            }
        }
    }
    // remove subsumed witnesses (keep minimal ones)
    let all: Vec<Vec<usize>> = witnesses.into_iter().collect();
    let mut minimal = Vec::new();
    'outer: for (i, w) in all.iter().enumerate() {
        for (j, other) in all.iter().enumerate() {
            if i != j && other.iter().all(|x| w.contains(x)) && other.len() < w.len() {
                continue 'outer;
            }
        }
        minimal.push(w.clone());
    }
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn groundings_of_a_single_variable_atom() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', x)", &schema, &mut domain).unwrap();
        let g = atom_groundings(&q.atoms[0], &domain);
        // x ranges over {a, b}: R(a,a), R(a,b)
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn groundings_of_a_two_variable_atom_cover_the_square() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let g = atom_groundings(&q.atoms[0], &domain);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn groundings_of_repeated_variable_atom_stay_on_the_diagonal() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let g = atom_groundings(&q.atoms[0], &domain);
        assert_eq!(g.len(), 2, "only R(a,a) and R(b,b)");
    }

    #[test]
    fn ground_atoms_have_a_single_grounding() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let g = atom_groundings(&q.atoms[0], &domain);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn support_space_unions_subgoal_groundings() {
        let (schema, mut domain) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 100).unwrap();
        // {R(a,a), R(b,a)} ∪ {R(a,b), R(b,b)} = all 4 tuples
        assert_eq!(space.len(), 4);
        assert!(support_space(&[&s, &v], &domain, 3).is_err());
    }

    #[test]
    fn lineage_of_example_4_12() {
        // Q() :- R('a', x), R(x, x) over D = {a, b}:
        // witnesses are {t1} (x = a collapses both subgoals onto R(a,a))
        // and {t2, t4} (x = b: R(a,b) and R(b,b)), matching Q = t1 ∨ (t2 ∧ t4).
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
        let space = support_space(&[&q], &domain, 100).unwrap();
        let dnf = lineage_dnf(&q, &space);
        assert_eq!(dnf.len(), 2);
        let sizes: Vec<usize> = dnf.iter().map(|w| w.len()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn lineage_removes_subsumed_witnesses() {
        let (schema, mut domain) = setup();
        // R(x, y) with a redundant second subgoal R('a', z): witnesses through
        // x='a' are supersets of the singleton witnesses of R('a', z) only
        // when they coincide; check minimality holds (no witness strictly
        // contains another).
        let q = parse_query("Q() :- R(x, y), R('a', z)", &schema, &mut domain).unwrap();
        let space = support_space(&[&q], &domain, 100).unwrap();
        let dnf = lineage_dnf(&q, &space);
        for (i, w) in dnf.iter().enumerate() {
            for (j, o) in dnf.iter().enumerate() {
                if i != j {
                    assert!(
                        !(o.iter().all(|x| w.contains(x)) && o.len() < w.len()),
                        "witness {w:?} subsumed by {o:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_boolean_query_has_empty_lineage() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, x), x != x", &schema, &mut domain).unwrap();
        let space = support_space(&[&q], &domain, 100).unwrap();
        assert!(lineage_dnf(&q, &space).is_empty());
    }
}
