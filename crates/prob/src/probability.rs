//! Exact probabilities of query answers (Eqs. (1) and (2)).
//!
//! All functions in this module enumerate every instance of the dictionary's
//! tuple space (at most `2^24` by construction of
//! [`qvsec_data::bitset::MAX_ENUMERABLE`], and in practice far fewer because
//! the spaces are built from query supports). They are exact — probabilities
//! are [`Ratio`]s — and are the ground truth against which the symbolic
//! criteria (critical tuples, polynomials) are validated.

use qvsec_cq::eval::{evaluate, AnswerSet};
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Instance, Ratio, Result};
use std::collections::BTreeMap;

/// The probability of an arbitrary event (a predicate over instances) under
/// a dictionary: `Σ { P[I] : event(I) }`.
pub fn event_probability<F>(dict: &Dictionary, mut event: F) -> Result<Ratio>
where
    F: FnMut(&Instance) -> bool,
{
    let mut total = Ratio::ZERO;
    for (mask, instance) in dict.space().instances()? {
        if event(&instance) {
            total += dict.instance_probability_mask(mask);
        }
    }
    Ok(total)
}

/// The probability that a boolean query is true (Eq. (2) restricted to the
/// answer `true`).
pub fn boolean_probability(query: &ConjunctiveQuery, dict: &Dictionary) -> Result<Ratio> {
    event_probability(dict, |i| qvsec_cq::evaluate_boolean(query, i))
}

/// The conditional probability `P[event | given]`, or `None` if the
/// conditioning event has probability zero.
pub fn conditional_probability<F, G>(
    dict: &Dictionary,
    mut event: F,
    mut given: G,
) -> Result<Option<Ratio>>
where
    F: FnMut(&Instance) -> bool,
    G: FnMut(&Instance) -> bool,
{
    let mut joint = Ratio::ZERO;
    let mut cond = Ratio::ZERO;
    for (mask, instance) in dict.space().instances()? {
        if given(&instance) {
            let p = dict.instance_probability_mask(mask);
            cond += p;
            if event(&instance) {
                joint += p;
            }
        }
    }
    if cond.is_zero() {
        Ok(None)
    } else {
        Ok(Some(joint / cond))
    }
}

/// The exact distribution of a query's answer set: `P[S(I) = s]` for every
/// answer set `s` that occurs with positive probability (Eq. (2)).
pub fn answer_distribution(
    query: &ConjunctiveQuery,
    dict: &Dictionary,
) -> Result<BTreeMap<AnswerSet, Ratio>> {
    let mut dist: BTreeMap<AnswerSet, Ratio> = BTreeMap::new();
    for (mask, instance) in dict.space().instances()? {
        let p = dict.instance_probability_mask(mask);
        if p.is_zero() {
            continue;
        }
        let ans = evaluate(query, &instance);
        *dist.entry(ans).or_insert(Ratio::ZERO) += p;
    }
    Ok(dist)
}

/// The joint distribution of `(S(I), V̄(I))` over a dictionary, optionally
/// restricted to instances satisfying a prior-knowledge predicate `K`.
#[derive(Debug, Clone, Default)]
pub struct JointDistribution {
    entries: BTreeMap<(AnswerSet, Vec<AnswerSet>), Ratio>,
    /// The total probability mass covered (1 unless restricted by prior
    /// knowledge, in which case it is `P[K]`).
    pub total_mass: Ratio,
}

impl JointDistribution {
    /// Assembles a distribution from explicit entries (used by the
    /// mask-streaming kernel, which aggregates the same `(s, v̄)` outcomes
    /// without materializing an [`Instance`] per world).
    pub(crate) fn from_parts(
        entries: BTreeMap<(AnswerSet, Vec<AnswerSet>), Ratio>,
        total_mass: Ratio,
    ) -> Self {
        JointDistribution {
            entries,
            total_mass,
        }
    }

    /// Iterates over `((s, v̄), probability)` entries with positive mass.
    pub fn iter(&self) -> impl Iterator<Item = (&(AnswerSet, Vec<AnswerSet>), Ratio)> + '_ {
        self.entries.iter().map(|(k, &p)| (k, p))
    }

    /// The joint probability `P[S(I) = s ∧ V̄(I) = v̄ (∧ K)]`.
    pub fn joint(&self, s: &AnswerSet, v: &[AnswerSet]) -> Ratio {
        self.entries
            .get(&(s.clone(), v.to_vec()))
            .copied()
            .unwrap_or(Ratio::ZERO)
    }

    /// The marginal distribution of the secret query's answer.
    pub fn marginal_query(&self) -> BTreeMap<AnswerSet, Ratio> {
        let mut out: BTreeMap<AnswerSet, Ratio> = BTreeMap::new();
        for ((s, _), &p) in &self.entries {
            *out.entry(s.clone()).or_insert(Ratio::ZERO) += p;
        }
        out
    }

    /// The marginal distribution of the views' answers.
    pub fn marginal_views(&self) -> BTreeMap<Vec<AnswerSet>, Ratio> {
        let mut out: BTreeMap<Vec<AnswerSet>, Ratio> = BTreeMap::new();
        for ((_, v), &p) in &self.entries {
            *out.entry(v.clone()).or_insert(Ratio::ZERO) += p;
        }
        out
    }

    /// Number of distinct `(s, v̄)` outcomes with positive probability.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the distribution is empty (e.g. prior knowledge with
    /// probability zero).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Builds the joint distribution of `(S(I), V̄(I))` over the dictionary,
/// restricted to instances satisfying `prior` (pass `|_| true` for no prior
/// knowledge). Probabilities are *not* renormalised by `P[K]`; use
/// [`JointDistribution::total_mass`] to condition.
pub fn joint_distribution<F>(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    mut prior: F,
) -> Result<JointDistribution>
where
    F: FnMut(&Instance) -> bool,
{
    let mut out = JointDistribution::default();
    for (mask, instance) in dict.space().instances()? {
        if !prior(&instance) {
            continue;
        }
        let p = dict.instance_probability_mask(mask);
        if p.is_zero() {
            continue;
        }
        out.total_mass += p;
        let s_ans = evaluate(secret, &instance);
        let v_ans: Vec<AnswerSet> = views.iter().map(|v| evaluate(v, &instance)).collect();
        *out.entries.entry((s_ans, v_ans)).or_insert(Ratio::ZERO) += p;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        (schema, domain, dict)
    }

    #[test]
    fn example_4_2_prior_probability_is_3_16() {
        // P[S(I) = {(a)}] = 3/16 for S(y) :- R(x, y) over D={a,b}, p=1/2.
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let dist = answer_distribution(&s, &dict).unwrap();
        let a = domain.get("a").unwrap();
        let target: AnswerSet = [vec![a]].into_iter().collect();
        assert_eq!(dist.get(&target).copied(), Some(Ratio::new(3, 16)));
        // the distribution is a probability distribution
        let total: Ratio = dist.values().copied().sum();
        assert!(total.is_one());
    }

    #[test]
    fn example_4_2_posterior_probability_is_1_3() {
        // P[S(I) = {(a)} | V(I) = {(b)}] = 1/3 for V(x) :- R(x, y).
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s_target: AnswerSet = [vec![a]].into_iter().collect();
        let v_target: AnswerSet = [vec![b]].into_iter().collect();
        let posterior = conditional_probability(
            &dict,
            |i| evaluate(&s, i) == s_target,
            |i| evaluate(&v, i) == v_target,
        )
        .unwrap()
        .unwrap();
        assert_eq!(posterior, Ratio::new(1, 3));
    }

    #[test]
    fn example_4_3_posterior_equals_prior() {
        // V(x) :- R(x, 'b'), S(y) :- R(y, 'a'): P[S={(a)}] = 1/4 with or
        // without V = {(b)}.
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s_target: AnswerSet = [vec![a]].into_iter().collect();
        let v_target: AnswerSet = [vec![b]].into_iter().collect();
        let prior = event_probability(&dict, |i| evaluate(&s, i) == s_target).unwrap();
        assert_eq!(prior, Ratio::new(1, 4));
        let posterior = conditional_probability(
            &dict,
            |i| evaluate(&s, i) == s_target,
            |i| evaluate(&v, i) == v_target,
        )
        .unwrap()
        .unwrap();
        assert_eq!(posterior, Ratio::new(1, 4));
    }

    #[test]
    fn boolean_probability_of_single_tuple_assertion() {
        let (schema, mut domain, dict) = setup();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        assert_eq!(boolean_probability(&q, &dict).unwrap(), Ratio::new(1, 2));
        let q2 = parse_query("Q2() :- R(x, y)", &schema, &mut domain).unwrap();
        // P[database non-empty] = 1 − (1/2)^4 = 15/16
        assert_eq!(boolean_probability(&q2, &dict).unwrap(), Ratio::new(15, 16));
    }

    #[test]
    fn conditioning_on_impossible_event_returns_none() {
        let (_, _, dict) = setup();
        let res = conditional_probability(&dict, |_| true, |_| false).unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn joint_distribution_marginals_are_consistent() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let joint = joint_distribution(&s, &ViewSet::single(v), &dict, |_| true).unwrap();
        assert!(joint.total_mass.is_one());
        let total: Ratio = joint.iter().map(|(_, p)| p).sum();
        assert!(total.is_one());
        let mq: Ratio = joint.marginal_query().values().copied().sum();
        assert!(mq.is_one());
        let mv: Ratio = joint.marginal_views().values().copied().sum();
        assert!(mv.is_one());
        assert!(!joint.is_empty());
        assert!(joint.len() >= 4);
    }

    #[test]
    fn joint_distribution_with_prior_restricts_mass() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        // prior knowledge: the database is non-empty
        let joint = joint_distribution(&s, &ViewSet::single(v), &dict, |i| !i.is_empty()).unwrap();
        assert_eq!(joint.total_mass, Ratio::new(15, 16));
    }
}
