//! Event polynomials `f_Q(x̄)` (Section 4.3).
//!
//! For a boolean query `Q` over a tuple space `{t_1, ..., t_n}`, the
//! probability that `Q` is true is a polynomial `f_Q` in the tuple
//! probabilities `x_1, ..., x_n` (Eq. (5)). Proposition 4.13 lists the
//! properties this polynomial has — in particular each variable has degree at
//! most one, and `x_i` occurs (degree exactly one) **iff** `t_i` is a
//! critical tuple of `Q`. The proofs of Theorems 4.5, 4.8 and 5.2 are
//! manipulations of these polynomials; this module makes them executable:
//!
//! * [`event_polynomial`] builds `f_Q` exactly (integer coefficients) from a
//!   query and a tuple space, via the Möbius transform of the satisfying-set
//!   indicator;
//! * [`Polynomial`] supports the ring operations, evaluation, variable
//!   degrees and the Shannon substitutions `x_i := 0/1` used in the paper's
//!   induction (Prop. 4.13, item 5).

use qvsec_cq::{evaluate_boolean, ConjunctiveQuery};
use qvsec_data::{Ratio, Result, TupleSpace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A monomial: a finite map from variable index to (positive) exponent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(BTreeMap<u32, u32>);

impl Monomial {
    /// The empty (constant) monomial.
    pub fn one() -> Self {
        Monomial::default()
    }

    /// The monomial `x_v`.
    pub fn var(v: u32) -> Self {
        let mut m = BTreeMap::new();
        m.insert(v, 1);
        Monomial(m)
    }

    /// The product of two monomials (exponents add).
    pub fn product(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (&v, &e) in &other.0 {
            *out.entry(v).or_insert(0) += e;
        }
        Monomial(out)
    }

    /// The exponent of a variable in this monomial.
    pub fn degree_of(&self, v: u32) -> u32 {
        self.0.get(&v).copied().unwrap_or(0)
    }

    /// The total degree.
    pub fn total_degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// The variables occurring with positive exponent.
    pub fn variables(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.keys().copied()
    }
}

/// A sparse polynomial with exact `i128` coefficients over variables indexed
/// by tuple-space position.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    terms: BTreeMap<Monomial, i128>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: i128) -> Self {
        let mut p = Polynomial::zero();
        if c != 0 {
            p.terms.insert(Monomial::one(), c);
        }
        p
    }

    /// The polynomial `x_v`.
    pub fn var(v: u32) -> Self {
        let mut p = Polynomial::zero();
        p.terms.insert(Monomial::var(v), 1);
        p
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of monomials with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of a monomial.
    pub fn coefficient(&self, m: &Monomial) -> i128 {
        self.terms.get(m).copied().unwrap_or(0)
    }

    /// The maximum exponent of `x_v` across all monomials. By
    /// Proposition 4.13(1)–(2), for an event polynomial this is 1 iff tuple
    /// `v` is critical for the query and 0 otherwise.
    pub fn degree_of_var(&self, v: u32) -> u32 {
        self.terms.keys().map(|m| m.degree_of(v)).max().unwrap_or(0)
    }

    /// All variables occurring in the polynomial.
    pub fn variables(&self) -> BTreeSet<u32> {
        self.terms
            .keys()
            .flat_map(|m| m.variables().collect::<Vec<_>>())
            .collect()
    }

    /// The total degree of the polynomial.
    pub fn total_degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    fn insert(&mut self, m: Monomial, c: i128) {
        if c == 0 {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert(0);
        *entry += c;
        if *entry == 0 {
            // normalise: drop zero coefficients so equality is structural
            self.terms.remove(&m);
        }
    }

    /// Evaluates the polynomial at a rational point (variable `i` takes value
    /// `point[i]`; missing variables default to zero).
    pub fn eval(&self, point: &[Ratio]) -> Ratio {
        let mut total = Ratio::ZERO;
        for (m, &c) in &self.terms {
            let mut term = Ratio::from_integer(c);
            for v in m.variables() {
                let x = point.get(v as usize).copied().unwrap_or(Ratio::ZERO);
                term *= x.pow(m.degree_of(v));
            }
            total += term;
        }
        total
    }

    /// Evaluates the polynomial at an `f64` point.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(m, &c)| {
                let mut term = c as f64;
                for v in m.variables() {
                    term *= point
                        .get(v as usize)
                        .copied()
                        .unwrap_or(0.0)
                        .powi(m.degree_of(v) as i32);
                }
                term
            })
            .sum()
    }

    /// Substitutes `x_v := value` (0 or 1), producing the polynomial of the
    /// restricted boolean formula (Prop. 4.13, item 5: `f_{Q[t=false]} =
    /// f_Q[x=0]`, `f_{Q[t=true]} = f_Q[x=1]`).
    pub fn substitute_bool(&self, v: u32, value: bool) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, &c) in &self.terms {
            let deg = m.degree_of(v);
            if deg == 0 {
                out.insert(m.clone(), c);
            } else if value {
                // x_v^d = 1: drop the variable
                let reduced = Monomial(
                    m.0.iter()
                        .filter(|(&var, _)| var != v)
                        .map(|(&var, &e)| (var, e))
                        .collect(),
                );
                out.insert(reduced, c);
            }
            // value = false and deg > 0: the whole term vanishes
        }
        out
    }

    /// Iterates over `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, i128)> + '_ {
        self.terms.iter().map(|(m, &c)| (m, c))
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, &c) in &rhs.terms {
            out.insert(m.clone(), c);
        }
        out
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, &c) in &rhs.terms {
            out.insert(m.clone(), -c);
        }
        out
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, &c) in &self.terms {
            out.insert(m.clone(), -c);
        }
        out
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &rhs.terms {
                out.insert(
                    ma.product(mb),
                    ca.checked_mul(cb).expect("polynomial coefficient overflow"),
                );
            }
        }
        out
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, &c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.0.is_empty() {
                write!(f, "{c}")?;
            } else {
                if c != 1 {
                    write!(f, "{c}·")?;
                }
                let vars: Vec<String> =
                    m.0.iter()
                        .map(|(&v, &e)| {
                            if e == 1 {
                                format!("x{v}")
                            } else {
                                format!("x{v}^{e}")
                            }
                        })
                        .collect();
                write!(f, "{}", vars.join("·"))?;
            }
        }
        Ok(())
    }
}

/// Builds the multilinear polynomial with the given coefficients from the
/// indicator of the satisfying instances: `sat[mask]` is whether the boolean
/// event holds on the instance encoded by `mask` over `n_vars` tuples.
///
/// Coefficient of the monomial `∏_{i ∈ T} x_i` is
/// `Σ_{I ⊆ T, sat(I)} (−1)^{|T|−|I|}` (subset Möbius transform).
pub fn from_satisfying(n_vars: usize, sat: &[bool]) -> Polynomial {
    assert_eq!(
        sat.len(),
        1usize << n_vars,
        "sat table must have 2^n entries"
    );
    let mut coeffs: Vec<i128> = sat.iter().map(|&b| if b { 1 } else { 0 }).collect();
    for bit in 0..n_vars {
        for mask in 0..coeffs.len() {
            if mask & (1 << bit) != 0 {
                coeffs[mask] -= coeffs[mask ^ (1 << bit)];
            }
        }
    }
    let mut poly = Polynomial::zero();
    for (mask, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let monomial = Monomial(
            (0..n_vars)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| (i as u32, 1))
                .collect(),
        );
        poly.insert(monomial, c);
    }
    poly
}

/// Builds the event polynomial `f_Q` of a boolean query over a tuple space by
/// evaluating the query on every instance of the space (Eq. (5)). Errors if
/// the space is too large to enumerate.
pub fn event_polynomial(query: &ConjunctiveQuery, space: &TupleSpace) -> Result<Polynomial> {
    let mut sat = vec![false; 1usize << space.len()];
    for (mask, instance) in space.instances()? {
        sat[mask as usize] = evaluate_boolean(query, &instance);
    }
    Ok(from_satisfying(space.len(), &sat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};

    fn x(v: u32) -> Polynomial {
        Polynomial::var(v)
    }

    #[test]
    fn ring_operations() {
        let p = &(&x(0) + &x(1)) * &x(2);
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.degree_of_var(2), 1);
        let q = &p - &p;
        assert!(q.is_zero());
        let sq = &x(0) * &x(0);
        assert_eq!(sq.degree_of_var(0), 2);
        assert_eq!(sq.total_degree(), 2);
        let neg = -&x(0);
        assert_eq!((&neg + &x(0)), Polynomial::zero());
    }

    #[test]
    fn evaluation_matches_structure() {
        // p = x0 + x1·x2 − x0·x1·x2
        let p = &(&x(0) + &(&x(1) * &x(2))) - &(&(&x(0) * &x(1)) * &x(2));
        let half = Ratio::new(1, 2);
        let v = p.eval(&[half, half, half]);
        // 1/2 + 1/4 − 1/8 = 5/8
        assert_eq!(v, Ratio::new(5, 8));
        assert!((p.eval_f64(&[0.5, 0.5, 0.5]) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn example_4_12_polynomial() {
        // Q() :- R('a', x), R(x, x) over D = {a, b}.
        // tup(D) ordered by TupleSpace: t0=R(a,a), t1=R(a,b), t2=R(b,a), t3=R(b,b).
        // The paper's indexing (t1..t4) gives fQ = x1 + x2·x4 − x1·x2·x4, i.e.
        // in 0-based order: x0 + x1·x3 − x0·x1·x3.
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let f = event_polynomial(&q, &space).unwrap();
        let expected = &(&x(0) + &(&x(1) * &x(3))) - &(&(&x(0) * &x(1)) * &x(3));
        assert_eq!(f, expected);
        // Prop 4.13(2): x0, x1, x3 have degree 1 (critical tuples); x2 degree 0.
        assert_eq!(f.degree_of_var(0), 1);
        assert_eq!(f.degree_of_var(1), 1);
        assert_eq!(f.degree_of_var(2), 0);
        assert_eq!(f.degree_of_var(3), 1);
        // evaluating at the all-1/2 point gives P[Q] = 12/16... let's check:
        // fQ(1/2,·,·,1/2) = 1/2 + 1/4 − 1/8 = 5/8 = 10/16; the paper says Q is
        // true on 12 of 16 instances of the FULL space of 4 tuples where the
        // third tuple is free: 5/8 · 2 halves? Direct count: Q true on
        // instances containing t0, or containing both t1 and t3:
        // |{t0}| = 8, |{t1,t3}| = 4, overlap 2 ⇒ 10 instances ⇒ 10/16 = 5/8. ✓
        let half = Ratio::new(1, 2);
        assert_eq!(f.eval(&[half, half, half, half]), Ratio::new(5, 8));
    }

    #[test]
    fn product_of_disjoint_event_polynomials_is_the_conjunction_polynomial() {
        // Prop 4.13(3): crit(Q1) ∩ crit(Q2) = ∅ ⇒ f_{Q1∧Q2} = f_Q1 · f_Q2.
        // Example 4.12 continued: Q' :- R('b','a') depends only on t2.
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
        let qp = parse_query("Qp() :- R('b', 'a')", &schema, &mut domain).unwrap();
        let conj = parse_query(
            "C() :- R('a', x), R(x, x), R('b', 'a')",
            &schema,
            &mut domain,
        )
        .unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let f_q = event_polynomial(&q, &space).unwrap();
        let f_qp = event_polynomial(&qp, &space).unwrap();
        let f_conj = event_polynomial(&conj, &space).unwrap();
        assert_eq!(f_qp, x(2));
        assert_eq!(&f_q * &f_qp, f_conj);
    }

    #[test]
    fn substitution_mirrors_boolean_restriction() {
        // Prop 4.13(5) on Example 4.12: f_Q[x3 = 0] = x0, f_Q[x3 = 1] = x0 + x1 − x0·x1.
        let f = &(&x(0) + &(&x(1) * &x(3))) - &(&(&x(0) * &x(1)) * &x(3));
        assert_eq!(f.substitute_bool(3, false), x(0));
        let expected = &(&x(0) + &x(1)) - &(&x(0) * &x(1));
        assert_eq!(f.substitute_bool(3, true), expected);
    }

    #[test]
    fn from_satisfying_of_constant_events() {
        let always = from_satisfying(2, &[true, true, true, true]);
        assert_eq!(always, Polynomial::constant(1));
        let never = from_satisfying(2, &[false, false, false, false]);
        assert!(never.is_zero());
        // event "tuple 0 is present"
        let t0 = from_satisfying(2, &[false, true, false, true]);
        assert_eq!(t0, x(0));
    }

    #[test]
    fn event_polynomial_coefficients_bound_probabilities() {
        // probabilities evaluated from the polynomial always lie in [0,1]
        // for probability points — spot check a non-trivial query.
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q() :- R(x, y), R(y, x)", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let f = event_polynomial(&q, &space).unwrap();
        for num in 0..=4i128 {
            let p = Ratio::new(num, 4);
            let val = f.eval(&[p; 4]);
            assert!(
                val >= Ratio::ZERO && val <= Ratio::ONE,
                "P = {val} out of range"
            );
        }
    }

    #[test]
    fn display_is_readable() {
        let p = &(&x(0) * &x(1)) + &Polynomial::constant(2);
        let s = p.to_string();
        assert!(s.contains("x0·x1"));
        assert!(s.contains('2'));
        assert_eq!(Polynomial::zero().to_string(), "0");
    }
}
