//! Monte-Carlo estimation of probabilities and disclosures.
//!
//! When the relevant tuple space is too large for exact enumeration (the
//! hospital-sized dictionaries of Section 3.2, or the growing domains used to
//! study asymptotic behaviour in Section 6.2), probabilities are estimated by
//! sampling instances from the tuple-independent distribution. Sampling of
//! independent batches is parallelised with `std::thread` scoped threads.

use qvsec_cq::eval::{evaluate, AnswerSet};
use qvsec_cq::{evaluate_boolean, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Instance, InstanceSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Monte-Carlo estimator bound to a dictionary.
#[derive(Debug, Clone)]
pub struct MonteCarloEstimator<'a> {
    dict: &'a Dictionary,
    samples: usize,
    seed: u64,
    threads: usize,
}

impl<'a> MonteCarloEstimator<'a> {
    /// Creates an estimator drawing `samples` instances (deterministic for a
    /// fixed seed).
    pub fn new(dict: &'a Dictionary, samples: usize, seed: u64) -> Self {
        MonteCarloEstimator {
            dict,
            samples,
            seed,
            threads: 4,
        }
    }

    /// Sets the number of worker threads used for sampling (default 4).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of samples drawn per estimate.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Estimates `P[event]` by parallel sampling.
    pub fn estimate<F>(&self, event: F) -> f64
    where
        F: Fn(&Instance) -> bool + Sync,
    {
        if self.samples == 0 {
            return 0.0;
        }
        let per_thread = self.samples.div_ceil(self.threads);
        let total_hits = std::sync::atomic::AtomicUsize::new(0);
        let total_samples = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..self.threads {
                let event = &event;
                let total_hits = &total_hits;
                let total_samples = &total_samples;
                let dict = self.dict;
                let seed = self.seed;
                scope.spawn(move || {
                    let sampler = InstanceSampler::new(dict);
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9E37_79B9));
                    let mut hits = 0usize;
                    for _ in 0..per_thread {
                        if event(&sampler.sample(&mut rng)) {
                            hits += 1;
                        }
                    }
                    total_hits.fetch_add(hits, std::sync::atomic::Ordering::Relaxed);
                    total_samples.fetch_add(per_thread, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        total_hits.load(std::sync::atomic::Ordering::Relaxed) as f64
            / total_samples.load(std::sync::atomic::Ordering::Relaxed) as f64
    }

    /// Estimates `P[event | given]` by rejection sampling (single-threaded,
    /// since the conditioning may be rare). Returns `None` if the condition
    /// was never observed.
    pub fn estimate_conditional<F, G>(&self, event: F, given: G) -> Option<f64>
    where
        F: Fn(&Instance) -> bool,
        G: Fn(&Instance) -> bool,
    {
        let sampler = InstanceSampler::new(self.dict);
        let mut rng = StdRng::seed_from_u64(self.seed);
        sampler.estimate_conditional(&mut rng, self.samples, event, given)
    }

    /// Estimates the probability that a boolean query is true.
    pub fn boolean_probability(&self, query: &ConjunctiveQuery) -> f64 {
        self.estimate(|i| evaluate_boolean(query, i))
    }

    /// Estimates `P[answer ∈ S(I)]` — the monotone atomic events of the
    /// leakage measure (Section 6.1).
    pub fn answer_inclusion_probability(
        &self,
        query: &ConjunctiveQuery,
        answer: &[qvsec_data::Value],
    ) -> f64 {
        self.estimate(|i| evaluate(query, i).contains(answer))
    }

    /// Estimates the relative leakage `(P[s ⊆ S | v̄ ⊆ V̄] − P[s ⊆ S]) / P[s ⊆ S]`
    /// for one specific pair of atomic events. Returns `None` when either the
    /// conditioning event was never observed or the prior estimate is zero.
    ///
    /// Prior and posterior are computed from **one** shared sample set (each
    /// sampled instance is evaluated once and feeds both counters), so a
    /// fixed seed yields one deterministic answer and the sampling cost is
    /// paid once instead of once per estimate. This also removes the
    /// pre-kernel failure mode where the prior and the conditional estimate
    /// came from different draws and could disagree on overlapping events.
    pub fn relative_leakage(
        &self,
        query: &ConjunctiveQuery,
        query_answer: &[qvsec_data::Value],
        views: &ViewSet,
        view_answers: &[Vec<qvsec_data::Value>],
    ) -> Option<f64> {
        if self.samples == 0 {
            return None;
        }
        let sampler = InstanceSampler::new(self.dict);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut s_hits = 0usize;
        let mut v_hits = 0usize;
        let mut joint_hits = 0usize;
        for _ in 0..self.samples {
            let inst = sampler.sample(&mut rng);
            let s_in = evaluate(query, &inst).contains(query_answer);
            let v_in = views.iter().zip(view_answers.iter()).all(|(v, ans)| {
                let out: AnswerSet = evaluate(v, &inst);
                out.contains(ans)
            });
            if s_in {
                s_hits += 1;
            }
            if v_in {
                v_hits += 1;
                if s_in {
                    joint_hits += 1;
                }
            }
        }
        if s_hits == 0 || v_hits == 0 {
            return None;
        }
        let prior = s_hits as f64 / self.samples as f64;
        let posterior = joint_hits as f64 / v_hits as f64;
        Some((posterior - prior) / prior)
    }

    /// Draws one sample (useful for smoke tests and examples).
    pub fn sample_once(&self) -> Instance {
        let sampler = InstanceSampler::new(self.dict);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xABCD);
        sampler.sample(&mut rng)
    }

    /// Draws a random seed-derived sub-seed, exposed so callers can fan out
    /// reproducible experiments.
    pub fn derive_seed(&self, label: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(self.seed ^ label);
        rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::boolean_probability;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Ratio, Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, Dictionary::half(space))
    }

    #[test]
    fn monte_carlo_agrees_with_exact_probability() {
        let (schema, mut domain, dict) = setup();
        let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
        let exact = boolean_probability(&q, &dict).unwrap().to_f64();
        let mc = MonteCarloEstimator::new(&dict, 8000, 11).with_threads(2);
        let est = mc.boolean_probability(&q);
        assert!(
            (est - exact).abs() < 0.03,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn conditional_estimates_detect_dependence() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', x)", &schema, &mut domain).unwrap();
        let mc = MonteCarloEstimator::new(&dict, 6000, 5);
        let prior = mc.boolean_probability(&s);
        let posterior = mc
            .estimate_conditional(
                |i| qvsec_cq::evaluate_boolean(&s, i),
                |i| qvsec_cq::evaluate_boolean(&v, i),
            )
            .unwrap();
        assert!(
            posterior > prior + 0.05,
            "posterior {posterior} vs prior {prior}"
        );
    }

    #[test]
    fn relative_leakage_is_deterministic_for_a_fixed_seed() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let mc = MonteCarloEstimator::new(&dict, 2000, 41);
        let views = ViewSet::single(v);
        let first = mc
            .relative_leakage(&s, &[a, b], &views, &[vec![a]])
            .unwrap();
        let second = mc
            .relative_leakage(&s, &[a, b], &views, &[vec![a]])
            .unwrap();
        assert_eq!(first, second, "one seed, one shared sample set, one answer");
        assert!(mc
            .relative_leakage(&s, &[a, b], &views, &[vec![a]])
            .unwrap()
            .is_finite());
        let zero = MonteCarloEstimator::new(&dict, 0, 41);
        assert!(zero
            .relative_leakage(&s, &[a, b], &views, &[vec![a]])
            .is_none());
    }

    #[test]
    fn relative_leakage_is_nonnegative_for_positive_dependence() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let mc = MonteCarloEstimator::new(&dict, 6000, 17);
        let leak = mc
            .relative_leakage(&s, &[a, b], &ViewSet::single(v), &[vec![a]])
            .unwrap();
        assert!(
            leak > -0.1,
            "observing the projection must not reduce the estimate much: {leak}"
        );
    }

    #[test]
    fn zero_samples_yield_zero_estimates() {
        let (_, _, dict) = setup();
        let mc = MonteCarloEstimator::new(&dict, 0, 1);
        assert_eq!(mc.estimate(|_| true), 0.0);
        assert_eq!(mc.samples(), 0);
    }

    #[test]
    fn answer_inclusion_probability_matches_exact_value() {
        // P[(a) ∈ V(I)] for V(x) :- R(x, y) is P[R(a,a) ∨ R(a,b)] = 3/4.
        let (schema, mut domain, dict) = setup();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let mc = MonteCarloEstimator::new(&dict, 8000, 23);
        let est = mc.answer_inclusion_probability(&v, &[a]);
        assert!((est - Ratio::new(3, 4).to_f64()).abs() < 0.03);
    }

    #[test]
    fn derived_seeds_and_samples_are_reproducible() {
        let (_, _, dict) = setup();
        let mc = MonteCarloEstimator::new(&dict, 10, 99);
        assert_eq!(mc.derive_seed(1), mc.derive_seed(1));
        assert_eq!(mc.sample_once(), mc.sample_once());
    }
}
