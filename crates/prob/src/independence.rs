//! The literal Definition 4.1 / Definition 5.1 independence test.
//!
//! A query `S` is secure w.r.t. views `V̄` under a dictionary `P` iff for all
//! possible answers `s` and `v̄`:
//!
//! ```text
//! P[S(I) = s] = P[S(I) = s | V̄(I) = v̄]          (Definition 4.1)
//! P[S(I) = s | K] = P[S(I) = s | V̄(I) = v̄ ∧ K]   (Definition 5.1)
//! ```
//!
//! This module decides these conditions *exactly* by enumerating the joint
//! distribution over a small tuple space. It is exponential and only usable
//! on the reduced supports of small examples — which is exactly its role:
//! it is the ground truth against which the polynomial-time-ish criteria of
//! Theorem 4.5 (critical-tuple disjointness) are cross-validated, and it
//! produces the concrete numbers of the paper's worked examples.

use crate::probability::{joint_distribution, JointDistribution};
use qvsec_cq::eval::AnswerSet;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Instance, Ratio, Result};
use serde::{Deserialize, Serialize};

/// One violation of the independence condition: an answer pair whose
/// posterior differs from its prior.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The secret query answer `s`.
    pub query_answer: AnswerSet,
    /// The view answers `v̄`.
    pub view_answers: Vec<AnswerSet>,
    /// `P[S(I) = s (| K)]`.
    pub prior: Ratio,
    /// `P[S(I) = s | V̄(I) = v̄ (∧ K)]`.
    pub posterior: Ratio,
}

impl Violation {
    /// The absolute probability change caused by observing the views.
    pub fn absolute_change(&self) -> Ratio {
        (self.posterior - self.prior).abs()
    }

    /// The relative increase `(posterior − prior) / prior` (the quantity
    /// whose supremum is the leakage measure of Section 6.1), when the prior
    /// is non-zero.
    pub fn relative_increase(&self) -> Option<Ratio> {
        if self.prior.is_zero() {
            None
        } else {
            Some((self.posterior - self.prior) / self.prior)
        }
    }
}

/// The outcome of an exhaustive independence check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndependenceReport {
    /// Whether `S` and `V̄` are statistically independent (i.e. `S |_P V̄`).
    pub independent: bool,
    /// Every violating answer pair, sorted by decreasing absolute change.
    pub violations: Vec<Violation>,
    /// Number of `(s, v̄)` answer pairs examined.
    pub pairs_checked: usize,
}

impl IndependenceReport {
    /// The most severe violation (largest absolute probability change).
    pub fn worst_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }
}

pub(crate) fn analyse(joint: &JointDistribution) -> IndependenceReport {
    analyse_capped(joint, None)
}

/// [`analyse`] with a cap on the *reported* violation list. The verdict
/// (`independent`) and `pairs_checked` always cover every pair; violations
/// are materialized **lazily** — the pair walk records borrowed keys plus
/// ratios, and the (heap-heavy) answer sets are cloned only for the at most
/// `cap` entries surviving the sort. `None` reports everything,
/// byte-identical to the historical output (the sort is stable over the
/// same emission order with the same key).
pub(crate) fn analyse_capped(joint: &JointDistribution, cap: Option<usize>) -> IndependenceReport {
    let mass = joint.total_mass;
    let marginal_q = joint.marginal_query();
    let marginal_v = joint.marginal_views();
    // Group the joint entries by secret answer once, so the Θ(|S| · |V̄|)
    // pair walk below looks masses up by reference — `joint.joint(s, v)`
    // would clone both (heap-heavy) keys per pair, which dominated
    // many-answer workloads.
    let mut by_secret: std::collections::BTreeMap<
        &AnswerSet,
        std::collections::BTreeMap<&Vec<AnswerSet>, Ratio>,
    > = std::collections::BTreeMap::new();
    for (key, p) in joint.iter() {
        by_secret.entry(&key.0).or_default().insert(&key.1, p);
    }
    let mut violating: Vec<(&AnswerSet, &Vec<AnswerSet>, Ratio, Ratio)> = Vec::new();
    let mut pairs = 0usize;
    for (s_ans, &p_s) in &marginal_q {
        let prior = p_s / mass;
        let row = by_secret.get(s_ans);
        for (v_ans, &p_v) in &marginal_v {
            if p_v.is_zero() {
                continue;
            }
            pairs += 1;
            let p_joint = row
                .and_then(|r| r.get(v_ans))
                .copied()
                .unwrap_or(Ratio::ZERO);
            let posterior = p_joint / p_v;
            if posterior != prior {
                violating.push((s_ans, v_ans, prior, posterior));
            }
        }
    }
    let independent = violating.is_empty();
    violating
        .sort_by_key(|(_, _, prior, posterior)| std::cmp::Reverse((*posterior - *prior).abs()));
    let keep = cap.unwrap_or(usize::MAX).min(violating.len());
    let violations = violating[..keep]
        .iter()
        .map(|(s_ans, v_ans, prior, posterior)| Violation {
            query_answer: (*s_ans).clone(),
            view_answers: (*v_ans).clone(),
            prior: *prior,
            posterior: *posterior,
        })
        .collect();
    IndependenceReport {
        independent,
        violations,
        pairs_checked: pairs,
    }
}

/// Checks Definition 4.1 exactly: is `S` statistically independent of `V̄`
/// under `dict`?
pub fn check_independence(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<IndependenceReport> {
    let joint = joint_distribution(secret, views, dict, |_| true)?;
    Ok(analyse(&joint))
}

/// Checks Definition 5.1 exactly: is `S` independent of `V̄` *given* the
/// prior knowledge predicate `K`? Instances violating `K` are discarded and
/// all probabilities are conditioned on `K`.
///
/// If `K` has probability zero the report is trivially independent (there is
/// nothing to learn from an impossible world).
pub fn check_independence_given<F>(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    prior: F,
) -> Result<IndependenceReport>
where
    F: FnMut(&Instance) -> bool,
{
    let joint = joint_distribution(secret, views, dict, prior)?;
    if joint.total_mass.is_zero() {
        return Ok(IndependenceReport {
            independent: true,
            violations: Vec::new(),
            pairs_checked: 0,
        });
    }
    Ok(analyse(&joint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        (schema, domain, dict)
    }

    #[test]
    fn example_4_2_is_not_independent() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let report = check_independence(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(!report.independent);
        assert!(!report.violations.is_empty());
        // the specific violation of Example 4.2: prior 3/16 vs posterior 1/3
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s_target: AnswerSet = [vec![a]].into_iter().collect();
        let v_target: AnswerSet = [vec![b]].into_iter().collect();
        let hit = report
            .violations
            .iter()
            .find(|viol| {
                viol.query_answer == s_target && viol.view_answers == vec![v_target.clone()]
            })
            .expect("the Example 4.2 pair must violate independence");
        assert_eq!(hit.prior, Ratio::new(3, 16));
        assert_eq!(hit.posterior, Ratio::new(1, 3));
        assert!(hit.relative_increase().unwrap() > Ratio::ZERO);
    }

    #[test]
    fn example_4_3_is_independent() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let report = check_independence(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(report.independent, "Example 4.3 must be secure");
        assert!(report.worst_violation().is_none());
        assert!(report.pairs_checked > 0);
    }

    #[test]
    fn independence_is_symmetric() {
        // Section 4.1.1: S | V iff V | S (Bayes). Check on both examples.
        let (schema, mut domain, dict) = setup();
        for (s_text, v_text) in [
            ("S(y) :- R(x, y)", "V(x) :- R(x, y)"),
            ("S(y) :- R(y, 'a')", "V(x) :- R(x, 'b')"),
        ] {
            let s = parse_query(s_text, &schema, &mut domain).unwrap();
            let v = parse_query(v_text, &schema, &mut domain).unwrap();
            let fwd = check_independence(&s, &ViewSet::single(v.clone()), &dict).unwrap();
            let bwd = check_independence(&v, &ViewSet::single(s), &dict).unwrap();
            assert_eq!(fwd.independent, bwd.independent);
        }
    }

    #[test]
    fn section_2_1_boolean_disclosure() {
        // S() :- R('a','b') vs V() :- R('a', p), R(n, 'b'): V true makes S
        // substantially more likely (the Jane/Shipping example shape).
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', p), R(n, 'b')", &schema, &mut domain).unwrap();
        let report = check_independence(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(!report.independent);
        let worst = report.worst_violation().unwrap();
        assert!(worst.absolute_change() > Ratio::ZERO);
    }

    #[test]
    fn prior_knowledge_of_the_critical_tuple_restores_independence() {
        // Corollary 5.4 instance: S() :- R('a', _), V() :- R(_, 'b') share the
        // critical tuple R(a,b); disclosing whether R(a,b) ∈ I restores
        // security. Here K = "R(a,b) ∉ I".
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let t_ab = qvsec_data::Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        let insecure = check_independence(&s, &ViewSet::single(v.clone()), &dict).unwrap();
        assert!(!insecure.independent);
        let secure_given_absent =
            check_independence_given(&s, &ViewSet::single(v.clone()), &dict, |i| {
                !i.contains(&t_ab)
            })
            .unwrap();
        assert!(secure_given_absent.independent);
        let secure_given_present =
            check_independence_given(&s, &ViewSet::single(v), &dict, |i| i.contains(&t_ab))
                .unwrap();
        assert!(secure_given_present.independent);
    }

    #[test]
    fn impossible_prior_knowledge_is_trivially_independent() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let report = check_independence_given(&s, &ViewSet::single(v), &dict, |_| false).unwrap();
        assert!(report.independent);
        assert_eq!(report.pairs_checked, 0);
    }

    #[test]
    fn multi_view_collusion_detects_dependence() {
        // Bob's and Carol's projections (Table 1, row 2) jointly leak about
        // the name-phone association: with the pair query S(x, y) :- R(x, y)
        // and the two unary projections, independence fails.
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v1 = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v2 = parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::from_views(vec![v1, v2]);
        let report = check_independence(&s, &views, &dict).unwrap();
        assert!(!report.independent);
    }
}
