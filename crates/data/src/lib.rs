//! # qvsec-data — relational and probabilistic substrate
//!
//! This crate implements the data model of Miklau & Suciu, *A Formal Analysis
//! of Information Disclosure in Data Exchange* (SIGMOD 2004 / JCSS 2007),
//! Section 3:
//!
//! * a finite **domain** `D` of constants ([`Domain`], [`Value`]),
//! * a relational **schema** with named relations and optional key
//!   constraints ([`Schema`], [`RelationSchema`], [`KeyConstraint`]),
//! * ground **tuples** over the schema ([`Tuple`]) and the set `tup(D)` of all
//!   tuples that can be formed from `D` ([`TupleSpace`]),
//! * database **instances** `I ⊆ tup(D)` ([`Instance`]) together with bitset
//!   encodings used by the exhaustive decision procedures ([`BitSet`]),
//! * **dictionaries** `(D, P)` assigning an occurrence probability to every
//!   tuple ([`Dictionary`]), inducing the tuple-independent distribution over
//!   instances of the paper's Eq. (1), and
//! * exact rational arithmetic ([`Ratio`]) and Monte-Carlo instance sampling
//!   ([`sampler`]).
//!
//! Everything downstream (the conjunctive-query engine, the probability
//! engine and the security decision procedures) is built on these types.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod candidates;
pub mod dictionary;
pub mod error;
pub mod instance;
pub mod lru;
pub mod ratio;
pub mod sampler;
pub mod schema;
pub mod sharded;
pub mod tuple;
pub mod tuple_space;
pub mod value;

pub use bitset::BitSet;
pub use candidates::CandidateSet;
pub use dictionary::Dictionary;
pub use error::DataError;
pub use instance::Instance;
pub use lru::LruCache;
pub use ratio::Ratio;
pub use sampler::InstanceSampler;
pub use schema::{KeyConstraint, RelationId, RelationSchema, Schema};
pub use sharded::ShardedLruCache;
pub use tuple::Tuple;
pub use tuple_space::TupleSpace;
pub use value::{Domain, Value};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
