//! Interned, bitset-backed candidate sets.
//!
//! The critical-tuple procedures enumerate large candidate sets (subgoal
//! groundings) and repeatedly union, intersect and filter them. Keeping those
//! sets as `BTreeSet<Tuple>` clones a heap-allocated [`Tuple`] per element on
//! every operation. A [`CandidateSet`] instead interns the candidates once in
//! a shared [`TupleSpace`] (the sorted, deduplicated universe) and represents
//! every derived set as a [`BitSet`] over that space — chunked `u64` words, so
//! unlike the single-mask instance enumeration the representation scales past
//! 64 tuples, and past the [`DEFAULT_FULL_SPACE_CAP`] of fully enumerated
//! spaces (spaces built with [`TupleSpace::from_tuples`] are unbounded).
//!
//! Set algebra on candidate sets is word-parallel (one `u64` AND/OR per 64
//! candidates) and iteration yields `&Tuple` borrows from the space; tuples
//! are only cloned when a caller materializes a final result.
//!
//! [`DEFAULT_FULL_SPACE_CAP`]: crate::tuple_space::DEFAULT_FULL_SPACE_CAP

use crate::bitset::BitSet;
use crate::tuple::Tuple;
use crate::tuple_space::TupleSpace;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A set of candidate tuples, stored as indices into a shared, interned
/// [`TupleSpace`].
#[derive(Debug, Clone)]
pub struct CandidateSet {
    space: Arc<TupleSpace>,
    bits: BitSet,
}

impl CandidateSet {
    /// The empty set over `space`.
    pub fn empty(space: Arc<TupleSpace>) -> Self {
        let bits = BitSet::new(space.len());
        CandidateSet { space, bits }
    }

    /// The set containing every tuple of `space`.
    pub fn full(space: Arc<TupleSpace>) -> Self {
        let bits = BitSet::full(space.len());
        CandidateSet { space, bits }
    }

    /// Wraps an existing bitset over `space` (e.g. a sampled world from
    /// [`crate::InstanceSampler::sample_bitset`]) without copying it.
    ///
    /// # Panics
    /// Panics if the bitset's capacity does not match the space.
    pub fn from_bits(space: Arc<TupleSpace>, bits: BitSet) -> Self {
        assert_eq!(
            bits.capacity(),
            space.len(),
            "bitset capacity must match the tuple space"
        );
        CandidateSet { space, bits }
    }

    /// The shared universe this set indexes into.
    pub fn space(&self) -> &Arc<TupleSpace> {
        &self.space
    }

    /// The underlying bitset.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// Inserts the tuple at space index `i`.
    pub fn insert_index(&mut self, i: usize) {
        self.bits.insert(i);
    }

    /// Inserts a tuple if it belongs to the space; returns whether it did.
    pub fn insert(&mut self, tuple: &Tuple) -> bool {
        match self.space.index_of(tuple) {
            Some(i) => {
                self.bits.insert(i);
                true
            }
            None => false,
        }
    }

    /// Whether the set contains `tuple`.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.space
            .index_of(tuple)
            .is_some_and(|i| self.bits.contains(i))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.count()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Iterates over the member indices in increasing (canonical) order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter()
    }

    /// Iterates over the member tuples, borrowed from the space, in the
    /// space's canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.bits.iter().map(|i| self.space.tuple(i))
    }

    /// In-place union with a set over the same space.
    ///
    /// # Panics
    /// Panics if the two sets were built over different spaces.
    pub fn union_with(&mut self, other: &CandidateSet) {
        self.assert_same_space(other);
        self.bits = self.bits.union(&other.bits);
    }

    /// In-place intersection with a set over the same space.
    ///
    /// # Panics
    /// Panics if the two sets were built over different spaces.
    pub fn intersect_with(&mut self, other: &CandidateSet) {
        self.assert_same_space(other);
        self.bits = self.bits.intersection(&other.bits);
    }

    /// Whether the two sets (over the same space) share no member.
    ///
    /// # Panics
    /// Panics if the two sets were built over different spaces.
    pub fn is_disjoint(&self, other: &CandidateSet) -> bool {
        self.assert_same_space(other);
        self.bits.is_disjoint_from(&other.bits)
    }

    /// Materializes the members as an owned, sorted set (this is the only
    /// place candidate tuples are cloned).
    pub fn to_tuples(&self) -> BTreeSet<Tuple> {
        self.iter().cloned().collect()
    }

    fn assert_same_space(&self, other: &CandidateSet) {
        assert!(
            Arc::ptr_eq(&self.space, &other.space) || self.space == other.space,
            "candidate sets belong to different tuple spaces"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Domain;

    fn space_over(n: usize) -> Arc<TupleSpace> {
        // n unary tuples U(c) — an interned universe of exactly n candidates.
        let mut schema = Schema::new();
        schema.add_relation("U", &["x"]);
        let domain = Domain::with_size(n);
        let rel = schema.relation_by_name("U").unwrap();
        let tuples = domain.values().map(|v| Tuple::new(rel, vec![v])).collect();
        Arc::new(TupleSpace::from_tuples(tuples))
    }

    #[test]
    fn insert_contains_iter_roundtrip() {
        let space = space_over(10);
        let mut set = CandidateSet::empty(Arc::clone(&space));
        assert!(set.is_empty());
        set.insert_index(3);
        assert!(set.insert(space.tuple(7)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(space.tuple(3)));
        assert!(!set.contains(space.tuple(4)));
        let indices: Vec<usize> = set.indices().collect();
        assert_eq!(indices, vec![3, 7]);
        assert_eq!(set.iter().count(), 2);
        assert_eq!(set.to_tuples().len(), 2);
    }

    #[test]
    fn tuples_outside_the_space_are_rejected() {
        let space = space_over(4);
        let mut set = CandidateSet::empty(Arc::clone(&space));
        let mut schema = Schema::new();
        schema.add_relation("U", &["x"]);
        let rel = schema.relation_by_name("U").unwrap();
        let outside = Tuple::new(rel, vec![crate::Value(99)]);
        assert!(!set.insert(&outside));
        assert!(!set.contains(&outside));
    }

    #[test]
    fn set_algebra_is_word_parallel_past_64_members() {
        // 130 candidates spans three u64 words.
        let space = space_over(130);
        let mut evens = CandidateSet::empty(Arc::clone(&space));
        let mut multiples_of_three = CandidateSet::empty(Arc::clone(&space));
        for i in 0..130 {
            if i % 2 == 0 {
                evens.insert_index(i);
            }
            if i % 3 == 0 {
                multiples_of_three.insert_index(i);
            }
        }
        let mut union = evens.clone();
        union.union_with(&multiples_of_three);
        let mut inter = evens.clone();
        inter.intersect_with(&multiples_of_three);
        assert_eq!(
            union.len(),
            (0..130).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );
        assert_eq!(inter.len(), (0..130).filter(|i| i % 6 == 0).count());
        assert!(!evens.is_disjoint(&multiples_of_three));
        let full = CandidateSet::full(Arc::clone(&space));
        assert_eq!(full.len(), 130);
        let empty = CandidateSet::empty(space);
        assert!(empty.is_disjoint(&full));
    }

    #[test]
    fn scales_past_the_full_space_default_cap() {
        // 5000 interned candidates — beyond DEFAULT_FULL_SPACE_CAP (4096),
        // which only bounds *fully enumerated* spaces.
        let space = space_over(5000);
        assert!(space.len() > crate::tuple_space::DEFAULT_FULL_SPACE_CAP);
        let mut set = CandidateSet::empty(Arc::clone(&space));
        for i in (0..5000).step_by(7) {
            set.insert_index(i);
        }
        assert_eq!(set.len(), 5000usize.div_ceil(7));
        assert_eq!(set.iter().count(), set.len());
    }

    #[test]
    #[should_panic(expected = "different tuple spaces")]
    fn mismatched_spaces_panic() {
        let a = CandidateSet::empty(space_over(4));
        let b = CandidateSet::empty(space_over(5));
        a.is_disjoint(&b);
    }
}
