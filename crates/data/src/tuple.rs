//! Ground tuples.
//!
//! A tuple `R(a, b, c)` is an element of `tup(D)` (Section 3.1). Tuples carry
//! the [`RelationId`] of the relation they belong to and a vector of domain
//! [`Value`]s.

use crate::schema::{RelationId, Schema};
use crate::value::{Domain, Value};
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A ground tuple over a schema and a domain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// The relation this tuple belongs to.
    pub relation: RelationId,
    /// The tuple's attribute values, in schema attribute order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple without validating arity against a schema.
    pub fn new(relation: RelationId, values: Vec<Value>) -> Self {
        Tuple { relation, values }
    }

    /// Creates a tuple, validating its arity against `schema`.
    pub fn checked(schema: &Schema, relation: RelationId, values: Vec<Value>) -> Result<Self> {
        let expected = schema.arity(relation);
        if values.len() != expected {
            return Err(DataError::ArityMismatch {
                relation: schema.relation(relation).name.clone(),
                expected,
                actual: values.len(),
            });
        }
        Ok(Tuple { relation, values })
    }

    /// Convenience constructor from constant names: `Tuple::parse(&schema,
    /// &domain, "Employee", &["alice", "sales", "555"])`.
    ///
    /// All constant names must already be interned in `domain`.
    pub fn from_names(
        schema: &Schema,
        domain: &Domain,
        relation: &str,
        values: &[&str],
    ) -> Result<Self> {
        let rel = schema.require_relation(relation)?;
        let vals = values
            .iter()
            .map(|n| domain.require(n))
            .collect::<Result<Vec<_>>>()?;
        Tuple::checked(schema, rel, vals)
    }

    /// The arity (number of values) of this tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at attribute position `i`.
    pub fn value(&self, i: usize) -> Value {
        self.values[i]
    }

    /// Projects the tuple onto the given attribute positions (used by key
    /// constraints: the projection onto the key positions identifies the
    /// `≡_K` equivalence class of the tuple).
    pub fn project(&self, positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&p| self.values[p]).collect()
    }

    /// Renders the tuple using the names in `schema` and `domain`.
    pub fn display<'a>(&'a self, schema: &'a Schema, domain: &'a Domain) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            schema,
            domain,
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.relation.0)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Pretty-printer for a tuple with resolved relation and constant names.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
    domain: &'a Domain,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.relation(self.tuple.relation).name)?;
        for (i, v) in self.tuple.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.domain.name(*v))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, Domain, RelationId) {
        let mut schema = Schema::new();
        let emp = schema.add_relation("Employee", &["name", "department", "phone"]);
        let domain = Domain::with_constants(["alice", "sales", "555", "bob"]);
        (schema, domain, emp)
    }

    #[test]
    fn checked_construction_validates_arity() {
        let (schema, domain, emp) = setup();
        let a = domain.get("alice").unwrap();
        let s = domain.get("sales").unwrap();
        let p = domain.get("555").unwrap();
        assert!(Tuple::checked(&schema, emp, vec![a, s, p]).is_ok());
        let err = Tuple::checked(&schema, emp, vec![a, s]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn from_names_resolves_relation_and_constants() {
        let (schema, domain, emp) = setup();
        let t =
            Tuple::from_names(&schema, &domain, "Employee", &["alice", "sales", "555"]).unwrap();
        assert_eq!(t.relation, emp);
        assert_eq!(t.arity(), 3);
        assert_eq!(domain.name(t.value(0)), "alice");
        assert!(Tuple::from_names(&schema, &domain, "Nope", &[]).is_err());
        assert!(
            Tuple::from_names(&schema, &domain, "Employee", &["alice", "sales", "999"]).is_err()
        );
    }

    #[test]
    fn projection_extracts_key_positions() {
        let (schema, domain, _) = setup();
        let t =
            Tuple::from_names(&schema, &domain, "Employee", &["alice", "sales", "555"]).unwrap();
        let key = t.project(&[0]);
        assert_eq!(key, vec![domain.get("alice").unwrap()]);
        let rev = t.project(&[2, 0]);
        assert_eq!(
            rev,
            vec![domain.get("555").unwrap(), domain.get("alice").unwrap()]
        );
    }

    #[test]
    fn display_resolves_names() {
        let (schema, domain, _) = setup();
        let t =
            Tuple::from_names(&schema, &domain, "Employee", &["alice", "sales", "555"]).unwrap();
        assert_eq!(
            t.display(&schema, &domain).to_string(),
            "Employee(alice, sales, 555)"
        );
        // the raw Display impl is schema-agnostic
        assert!(t.to_string().starts_with("r0("));
    }

    #[test]
    fn tuples_order_lexicographically() {
        let (schema, domain, _) = setup();
        let t1 =
            Tuple::from_names(&schema, &domain, "Employee", &["alice", "sales", "555"]).unwrap();
        let t2 = Tuple::from_names(&schema, &domain, "Employee", &["bob", "sales", "555"]).unwrap();
        assert!(t1 < t2);
    }
}
