//! Error types for the data substrate.

use std::fmt;

/// Errors produced while constructing or manipulating domains, schemas,
/// tuples, instances and dictionaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A constant name was looked up in a [`crate::Domain`] that does not
    /// contain it.
    UnknownConstant(String),
    /// A relation name was looked up in a [`crate::Schema`] that does not
    /// contain it.
    UnknownRelation(String),
    /// A relation was declared twice in the same schema.
    DuplicateRelation(String),
    /// A tuple was built with the wrong number of arguments for its relation.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity of the relation.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// A key constraint referenced an attribute position outside the
    /// relation's arity.
    InvalidKeyPosition {
        /// Relation name.
        relation: String,
        /// Offending attribute position.
        position: usize,
    },
    /// The full tuple space `tup(D)` would exceed the configured cap; callers
    /// should use an explicit support set instead.
    TupleSpaceTooLarge {
        /// Number of tuples that would be required.
        required: u128,
        /// Maximum number of tuples allowed.
        cap: usize,
    },
    /// A probability outside `[0, 1]` was supplied to a dictionary.
    InvalidProbability(String),
    /// A dictionary was built over a different number of tuples than its
    /// tuple space contains.
    DictionarySizeMismatch {
        /// Number of tuples in the tuple space.
        tuples: usize,
        /// Number of probabilities supplied.
        probabilities: usize,
    },
    /// Exhaustive instance enumeration was requested over a tuple space that
    /// is too large to enumerate (more than [`crate::bitset::MAX_ENUMERABLE`]
    /// tuples).
    EnumerationTooLarge(usize),
    /// Generic invariant violation with a human-readable message.
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownConstant(name) => write!(f, "unknown constant `{name}`"),
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {actual} arguments were supplied"
            ),
            DataError::InvalidKeyPosition { relation, position } => write!(
                f,
                "key position {position} is outside the arity of relation `{relation}`"
            ),
            DataError::TupleSpaceTooLarge { required, cap } => write!(
                f,
                "tuple space would contain {required} tuples, above the cap of {cap}"
            ),
            DataError::InvalidProbability(msg) => write!(f, "invalid probability: {msg}"),
            DataError::DictionarySizeMismatch {
                tuples,
                probabilities,
            } => write!(
                f,
                "dictionary has {probabilities} probabilities for {tuples} tuples"
            ),
            DataError::EnumerationTooLarge(n) => write!(
                f,
                "cannot exhaustively enumerate instances over {n} tuples (2^{n} subsets)"
            ),
            DataError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::ArityMismatch {
            relation: "R".to_string(),
            expected: 2,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('R'));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        let e = DataError::UnknownConstant("bob".into());
        assert!(e.to_string().contains("bob"));

        let e = DataError::TupleSpaceTooLarge {
            required: 1_000_000,
            cap: 100,
        };
        assert!(e.to_string().contains("1000000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DataError::UnknownRelation("R".into()),
            DataError::UnknownRelation("R".into())
        );
        assert_ne!(
            DataError::UnknownRelation("R".into()),
            DataError::UnknownRelation("S".into())
        );
    }
}
