//! A byte-budgeted, least-recently-used cache.
//!
//! The engine's compiled-artifact memos and the probabilistic kernel's
//! compile/column caches were append-only for the engine's lifetime — fine
//! for one audit batch, unbounded for a long-lived multi-tenant server. An
//! [`LruCache`] bounds each memo by an approximate **byte budget**: every
//! entry is inserted with a caller-estimated weight, a hit refreshes the
//! entry's recency, and an insert that pushes the cache over budget evicts
//! least-recently-used entries until it fits again.
//!
//! Two properties the serving layer relies on:
//!
//! * **Transparency** — eviction only ever discards *derived* state; a later
//!   request for an evicted key misses and recomputes, so verdicts are
//!   byte-identical under any budget (property-tested in the core crate).
//! * **Determinism** — recency ticks are a plain monotone counter and the
//!   eviction scan breaks ties by smallest tick, so the same request
//!   sequence always evicts the same entries regardless of thread count
//!   (callers serialize access through the mutex they already hold).
//!
//! An entry larger than the whole budget is still admitted (and everything
//! else evicted): the request that produced it must be served, and the next
//! insert will evict it like any other entry.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// One cached value with its byte weight and last-used tick.
#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

/// A byte-budgeted LRU map. See the [module docs](self).
#[derive(Debug)]
pub struct LruCache<K, V> {
    slots: HashMap<K, Slot<V>>,
    /// Byte budget; `None` keeps the historical append-only behaviour.
    budget: Option<usize>,
    resident_bytes: usize,
    tick: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache. `budget` of `None` never evicts.
    pub fn new(budget: Option<usize>) -> Self {
        LruCache {
            slots: HashMap::new(),
            budget,
            resident_bytes: 0,
            tick: 0,
            evictions: 0,
            evicted_bytes: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Approximate bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes evicted over the cache's lifetime.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Fetches `key`, refreshing its recency.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        qvsec_obs::counter("cache.lru.lookups").inc();
        self.tick += 1;
        let tick = self.tick;
        let hit = self.slots.get_mut(key).map(|slot| {
            slot.last_used = tick;
            &slot.value
        });
        if hit.is_some() {
            qvsec_obs::counter("cache.lru.hits").inc();
        }
        hit
    }

    /// Fetches `key` **without** refreshing its recency or counting a
    /// lookup — a read-only probe for introspection surfaces (`explain`)
    /// that must not perturb eviction order.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.slots.get(key).map(|slot| &slot.value)
    }

    /// Iterates the resident keys in unspecified order, without touching
    /// recency or any counter (introspection only).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.slots.keys()
    }

    /// Inserts `value` under `key` with an approximate byte weight, then
    /// evicts least-recently-used entries until the budget holds. If the key
    /// is already present its value is **kept** (racing duplicate inserts
    /// are harmless, mirroring the old `entry().or_insert()` memos) and the
    /// resident value is returned.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> &V {
        qvsec_obs::counter("cache.lru.inserts").inc();
        self.tick += 1;
        let tick = self.tick;
        let slot = self.slots.entry(key.clone()).or_insert_with(|| {
            self.resident_bytes += bytes;
            Slot {
                value,
                bytes,
                last_used: 0,
            }
        });
        slot.last_used = tick;
        self.enforce_budget(Some(&key));
        &self.slots[&key].value
    }

    /// Re-weighs an existing entry (used for values that grow after
    /// insertion, like shared class-verdict caches) and re-enforces the
    /// budget. The re-weighed entry itself is protected from this pass.
    pub fn set_bytes<Q>(&mut self, key: &Q, bytes: usize)
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ToOwned<Owned = K> + ?Sized,
    {
        if let Some(slot) = self.slots.get_mut(key) {
            self.resident_bytes = self.resident_bytes - slot.bytes + bytes;
            slot.bytes = bytes;
            let owned = key.to_owned();
            self.enforce_budget(Some(&owned));
        }
    }

    /// Evicts least-recently-used entries until `resident_bytes` fits the
    /// budget, never evicting `protect` (the entry serving the current
    /// request).
    fn enforce_budget(&mut self, protect: Option<&K>) {
        let Some(budget) = self.budget else { return };
        while self.resident_bytes > budget && self.slots.len() > 1 {
            let victim = self
                .slots
                .iter()
                .filter(|(k, _)| Some(*k) != protect)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slot) = self.slots.remove(&victim) {
                self.resident_bytes -= slot.bytes;
                self.evictions += 1;
                self.evicted_bytes += slot.bytes as u64;
                qvsec_obs::counter("cache.lru.evictions").inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_caches_never_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(None);
        for i in 0..100 {
            cache.insert(i, i, 1 << 20);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.resident_bytes(), 100 << 20);
    }

    #[test]
    fn over_budget_inserts_evict_the_least_recently_used() {
        let mut cache: LruCache<&str, u32> = LruCache::new(Some(30));
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        cache.insert("c", 3, 10);
        assert_eq!(cache.len(), 3);
        // Touch "a" so "b" is now the LRU entry.
        assert_eq!(cache.get("a"), Some(&1));
        cache.insert("d", 4, 10);
        assert_eq!(cache.get("b"), None, "LRU entry evicted");
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("d"), Some(&4));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.evicted_bytes(), 10);
        assert_eq!(cache.resident_bytes(), 30);
    }

    #[test]
    fn oversized_entries_are_admitted_and_evict_everything_else() {
        let mut cache: LruCache<&str, u32> = LruCache::new(Some(10));
        cache.insert("small", 1, 4);
        cache.insert("huge", 2, 1000);
        assert_eq!(cache.len(), 1, "only the oversized entry survives");
        assert_eq!(cache.get("huge"), Some(&2));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn peek_reads_without_refreshing_recency() {
        let mut cache: LruCache<&str, u32> = LruCache::new(Some(30));
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 10);
        cache.insert("c", 3, 10);
        // Peeking "a" must NOT save it from eviction (get would).
        assert_eq!(cache.peek("a"), Some(&1));
        cache.insert("d", 4, 10);
        assert_eq!(cache.peek("a"), None, "peek left `a` the LRU victim");
        assert_eq!(cache.peek("missing"), None);
    }

    #[test]
    fn duplicate_inserts_keep_the_resident_value() {
        let mut cache: LruCache<&str, u32> = LruCache::new(Some(100));
        cache.insert("k", 1, 10);
        let resident = *cache.insert("k", 2, 10);
        assert_eq!(resident, 1, "racing duplicate insert is ignored");
        assert_eq!(cache.resident_bytes(), 10, "no double accounting");
    }

    #[test]
    fn set_bytes_reweighs_and_re_enforces() {
        let mut cache: LruCache<String, u32> = LruCache::new(Some(20));
        cache.insert("a".to_string(), 1, 5);
        cache.insert("b".to_string(), 2, 5);
        cache.set_bytes("b", 19);
        assert_eq!(cache.get("a"), None, "growth of b evicted a");
        assert_eq!(cache.get("b"), Some(&2));
        assert_eq!(cache.resident_bytes(), 19);
    }

    #[test]
    fn eviction_order_is_deterministic_under_tick_ties() {
        // Ticks are strictly monotone, so there are no real ties; two
        // identically-driven caches evict identically.
        let drive = || {
            let mut cache: LruCache<u32, u32> = LruCache::new(Some(25));
            let mut evicted = Vec::new();
            for i in 0..20 {
                cache.insert(i % 7, i, 10);
                evicted.push(cache.evictions());
            }
            evicted
        };
        assert_eq!(drive(), drive());
    }
}
