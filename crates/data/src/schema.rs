//! Relational schemas and key constraints.
//!
//! A schema is a collection of relation names `R1, R2, ...`, each with a list
//! of named attributes (Section 3.1). Key constraints are the form of prior
//! knowledge analysed in Section 5.2 (Application 2 / Corollary 5.3).

use crate::error::DataError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The raw index of this relation in its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A key constraint: the listed attribute positions functionally determine
/// the whole tuple (at most one tuple per key value may be present).
///
/// In the paper's notation (Section 5.2), a set of key constraints `K`
/// induces the equivalence relation `t ≡_K t'` ("same relation, same key"),
/// and an instance satisfies `K` iff it contains at most one tuple from each
/// equivalence class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyConstraint {
    /// Relation the key applies to.
    pub relation: RelationId,
    /// Attribute positions (0-based) forming the key.
    pub positions: Vec<usize>,
}

/// Declaration of a single relation: its name and attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name, e.g. `"Employee"`.
    pub name: String,
    /// Attribute names, e.g. `["name", "department", "phone"]`.
    pub attributes: Vec<String>,
}

impl RelationSchema {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

/// A relational schema: an ordered list of relation declarations plus
/// optional key constraints.
///
/// ```
/// use qvsec_data::Schema;
/// let mut schema = Schema::new();
/// let emp = schema.add_relation("Employee", &["name", "department", "phone"]);
/// assert_eq!(schema.relation(emp).arity(), 3);
/// assert_eq!(schema.relation_by_name("Employee"), Some(emp));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    #[serde(skip)]
    by_name: HashMap<String, RelationId>,
    keys: Vec<KeyConstraint>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a relation with the given attribute names and returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists; use
    /// [`Schema::try_add_relation`] for a fallible version.
    pub fn add_relation(&mut self, name: &str, attributes: &[&str]) -> RelationId {
        self.try_add_relation(name, attributes)
            .expect("duplicate relation name")
    }

    /// Adds a relation, erroring on duplicate names.
    pub fn try_add_relation(&mut self, name: &str, attributes: &[&str]) -> Result<RelationId> {
        if self.by_name.contains_key(name) {
            return Err(DataError::DuplicateRelation(name.to_string()));
        }
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(RelationSchema {
            name: name.to_string(),
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a relation with anonymous attribute names `a0..a{arity-1}`.
    pub fn add_relation_with_arity(&mut self, name: &str, arity: usize) -> RelationId {
        let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        self.add_relation(name, &attr_refs)
    }

    /// Declares a key constraint on `relation` over the given attribute
    /// positions.
    pub fn add_key(&mut self, relation: RelationId, positions: &[usize]) -> Result<()> {
        let rel = self.relation(relation);
        for &p in positions {
            if p >= rel.arity() {
                return Err(DataError::InvalidKeyPosition {
                    relation: rel.name.clone(),
                    position: p,
                });
            }
        }
        self.keys.push(KeyConstraint {
            relation,
            positions: positions.to_vec(),
        });
        Ok(())
    }

    /// The declaration of a relation.
    pub fn relation(&self, id: RelationId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a relation by name, erroring if absent.
    pub fn require_relation(&self, name: &str) -> Result<RelationId> {
        self.relation_by_name(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// The arity of a relation.
    pub fn arity(&self, id: RelationId) -> usize {
        self.relation(id).arity()
    }

    /// Number of relations in the schema.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over all relation ids in declaration order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u32).map(RelationId)
    }

    /// All declared key constraints.
    pub fn keys(&self) -> &[KeyConstraint] {
        &self.keys
    }

    /// Key constraints declared for a specific relation.
    pub fn keys_for(&self, relation: RelationId) -> impl Iterator<Item = &KeyConstraint> + '_ {
        self.keys.iter().filter(move |k| k.relation == relation)
    }

    /// Rebuilds the name index (needed after deserialization, which skips the
    /// lookup table).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RelationId(i as u32)))
            .collect();
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            writeln!(f, "{}({})", rel.name, rel.attributes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_schema() -> (Schema, RelationId) {
        let mut s = Schema::new();
        let emp = s.add_relation("Employee", &["name", "department", "phone"]);
        (s, emp)
    }

    #[test]
    fn relations_are_indexed_by_name() {
        let (s, emp) = employee_schema();
        assert_eq!(s.relation_by_name("Employee"), Some(emp));
        assert_eq!(s.relation_by_name("Missing"), None);
        assert_eq!(s.relation(emp).name, "Employee");
        assert_eq!(s.arity(emp), 3);
    }

    #[test]
    fn duplicate_relations_are_rejected() {
        let (mut s, _) = employee_schema();
        assert_eq!(
            s.try_add_relation("Employee", &["x"]).unwrap_err(),
            DataError::DuplicateRelation("Employee".into())
        );
    }

    #[test]
    fn anonymous_attributes_get_generated_names() {
        let mut s = Schema::new();
        let r = s.add_relation_with_arity("R", 4);
        assert_eq!(s.relation(r).attributes, vec!["a0", "a1", "a2", "a3"]);
    }

    #[test]
    fn key_constraints_validate_positions() {
        let (mut s, emp) = employee_schema();
        s.add_key(emp, &[0]).unwrap();
        assert_eq!(s.keys().len(), 1);
        assert_eq!(s.keys_for(emp).count(), 1);
        let err = s.add_key(emp, &[7]).unwrap_err();
        assert!(matches!(
            err,
            DataError::InvalidKeyPosition { position: 7, .. }
        ));
    }

    #[test]
    fn require_relation_errors_on_unknown() {
        let (s, _) = employee_schema();
        assert!(s.require_relation("Employee").is_ok());
        assert!(s.require_relation("Nope").is_err());
    }

    #[test]
    fn display_shows_attribute_lists() {
        let (s, _) = employee_schema();
        assert_eq!(s.to_string(), "Employee(name, department, phone)\n");
    }

    #[test]
    fn relation_ids_iterate_in_order() {
        let mut s = Schema::new();
        let a = s.add_relation_with_arity("A", 1);
        let b = s.add_relation_with_arity("B", 2);
        let ids: Vec<_> = s.relation_ids().collect();
        assert_eq!(ids, vec![a, b]);
    }
}
