//! Monte-Carlo sampling of instances from a dictionary.
//!
//! The exhaustive procedures enumerate every instance of a small tuple space.
//! When the tuple space is too large for that (e.g. the hospital-scale
//! dictionaries sketched in Section 3.2, or the growing domains of
//! Section 6.2), probabilities and leakage are *estimated* by sampling
//! instances from the tuple-independent distribution — each tuple is included
//! independently with its dictionary probability.

use crate::bitset::BitSet;
use crate::dictionary::Dictionary;
use crate::instance::Instance;
use rand::Rng;

/// Samples database instances from a [`Dictionary`].
#[derive(Debug, Clone)]
pub struct InstanceSampler<'a> {
    dictionary: &'a Dictionary,
    probs: Vec<f64>,
}

impl<'a> InstanceSampler<'a> {
    /// Creates a sampler for the given dictionary.
    pub fn new(dictionary: &'a Dictionary) -> Self {
        InstanceSampler {
            probs: dictionary.probabilities_f64(),
            dictionary,
        }
    }

    /// The dictionary being sampled.
    pub fn dictionary(&self) -> &Dictionary {
        self.dictionary
    }

    /// Samples one instance: each tuple of the space is included
    /// independently with its probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Instance {
        Instance::from_tuples(
            self.probs
                .iter()
                .enumerate()
                .filter(|(_, &p)| rng.gen::<f64>() < p)
                .map(|(i, _)| self.dictionary.space().tuple(i).clone()),
        )
    }

    /// Samples one instance directly as a [`BitSet`] over the tuple space —
    /// no per-tuple clone, no `Instance` hash set. This is the representation
    /// the shared-sample probabilistic kernel keeps its world pool in; unlike
    /// [`InstanceSampler::sample_mask`] it scales past 64 tuples.
    ///
    /// Consumes exactly one `rng.gen::<f64>()` per tuple of the space, so a
    /// fixed seed yields the same world regardless of representation.
    pub fn sample_bitset<R: Rng + ?Sized>(&self, rng: &mut R) -> BitSet {
        let mut bits = BitSet::new(self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            if rng.gen::<f64>() < p {
                bits.insert(i);
            }
        }
        bits
    }

    /// Samples one instance as a `u64` mask over the tuple space (only valid
    /// for spaces with at most 64 tuples).
    pub fn sample_mask<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        debug_assert!(self.probs.len() <= 64);
        let mut mask = 0u64;
        for (i, &p) in self.probs.iter().enumerate() {
            if rng.gen::<f64>() < p {
                mask |= 1u64 << i;
            }
        }
        mask
    }

    /// Samples `count` instances.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Instance> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Estimates the probability of an event by sampling: the fraction of
    /// `samples` instances for which `event` returns `true`.
    pub fn estimate<R: Rng + ?Sized, F>(&self, rng: &mut R, samples: usize, mut event: F) -> f64
    where
        F: FnMut(&Instance) -> bool,
    {
        if samples == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        for _ in 0..samples {
            if event(&self.sample(rng)) {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }

    /// Estimates a conditional probability `P[event | given]` by rejection
    /// sampling. Returns `None` if the conditioning event was never observed.
    pub fn estimate_conditional<R: Rng + ?Sized, F, G>(
        &self,
        rng: &mut R,
        samples: usize,
        mut event: F,
        mut given: G,
    ) -> Option<f64>
    where
        F: FnMut(&Instance) -> bool,
        G: FnMut(&Instance) -> bool,
    {
        let mut conditioned = 0usize;
        let mut hits = 0usize;
        for _ in 0..samples {
            let inst = self.sample(rng);
            if given(&inst) {
                conditioned += 1;
                if event(&inst) {
                    hits += 1;
                }
            }
        }
        if conditioned == 0 {
            None
        } else {
            Some(hits as f64 / conditioned as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use crate::schema::Schema;
    use crate::tuple_space::TupleSpace;
    use crate::value::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dict(p: Ratio) -> Dictionary {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        Dictionary::uniform(space, p).unwrap()
    }

    #[test]
    fn sample_size_concentrates_around_expectation() {
        let d = dict(Ratio::new(1, 2));
        let sampler = InstanceSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(7);
        let total: usize = sampler
            .sample_many(&mut rng, 2000)
            .iter()
            .map(|i| i.len())
            .sum();
        let mean = total as f64 / 2000.0;
        // expected size is 2 tuples (4 tuples at p = 1/2)
        assert!((mean - 2.0).abs() < 0.15, "mean size {mean} too far from 2");
    }

    #[test]
    fn degenerate_probabilities_are_respected() {
        let d0 = dict(Ratio::ZERO);
        let d1 = dict(Ratio::ONE);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(InstanceSampler::new(&d0).sample(&mut rng).is_empty());
        assert_eq!(InstanceSampler::new(&d1).sample(&mut rng).len(), 4);
        assert_eq!(InstanceSampler::new(&d1).sample_mask(&mut rng), 0b1111);
    }

    #[test]
    fn estimate_recovers_known_probability() {
        // P[tuple 0 present] = 1/2
        let d = dict(Ratio::new(1, 2));
        let sampler = InstanceSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(42);
        let t0 = d.space().tuple(0).clone();
        let est = sampler.estimate(&mut rng, 4000, |i| i.contains(&t0));
        assert!((est - 0.5).abs() < 0.05, "estimate {est} too far from 0.5");
    }

    #[test]
    fn conditional_estimate_detects_dependence() {
        // P[t0 present | t0 present] = 1; conditioning on an impossible event
        // returns None for p = 0 dictionaries.
        let d = dict(Ratio::new(1, 2));
        let sampler = InstanceSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(3);
        let t0 = d.space().tuple(0).clone();
        let est = sampler
            .estimate_conditional(&mut rng, 1000, |i| i.contains(&t0), |i| i.contains(&t0))
            .unwrap();
        assert!((est - 1.0).abs() < 1e-9);

        let d0 = dict(Ratio::ZERO);
        let sampler0 = InstanceSampler::new(&d0);
        let t0 = d0.space().tuple(0).clone();
        assert!(sampler0
            .estimate_conditional(&mut rng, 100, |_| true, move |i| i.contains(&t0))
            .is_none());
    }

    #[test]
    fn bitset_samples_agree_with_instance_samples_for_a_fixed_seed() {
        let d = dict(Ratio::new(1, 3));
        let sampler = InstanceSampler::new(&d);
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let inst = sampler.sample(&mut rng_a);
            let bits = sampler.sample_bitset(&mut rng_b);
            assert_eq!(
                d.space().bitset_from_instance(&inst),
                bits,
                "seed {seed}: representations disagree"
            );
        }
    }

    #[test]
    fn estimate_with_zero_samples_is_zero() {
        let d = dict(Ratio::new(1, 2));
        let sampler = InstanceSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampler.estimate(&mut rng, 0, |_| true), 0.0);
    }
}
