//! Database instances.
//!
//! An instance `I` is any subset of `tup(D)` (Section 3.1). Instances are the
//! objects over which queries are evaluated, probabilities are defined
//! (Eq. (1)), and criticality of tuples is tested (Definition 4.4:
//! `Q(I − {t}) ≠ Q(I)`).

use crate::schema::{KeyConstraint, RelationId};
use crate::tuple::Tuple;
use crate::value::Domain;
use crate::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A database instance: a finite set of ground tuples.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Instance {
    tuples: BTreeSet<Tuple>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Builds an instance from an iterator of tuples.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(tuples: I) -> Self {
        Instance {
            tuples: tuples.into_iter().collect(),
        }
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.tuples.insert(t)
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Whether the instance contains the tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over all tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Iterates over the tuples of a single relation.
    pub fn tuples_of(&self, relation: RelationId) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter().filter(move |t| t.relation == relation)
    }

    /// Returns `I − {t}`: a copy of this instance with `t` removed
    /// (Definition 4.4).
    pub fn without(&self, t: &Tuple) -> Instance {
        let mut c = self.clone();
        c.remove(t);
        c
    }

    /// Returns `I ∪ {t}`.
    pub fn with(&self, t: Tuple) -> Instance {
        let mut c = self.clone();
        c.insert(t);
        c
    }

    /// Set union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        Instance {
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Set intersection of two instances.
    pub fn intersection(&self, other: &Instance) -> Instance {
        Instance {
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// Whether an instance satisfies a key constraint: no two distinct tuples
    /// of the constrained relation agree on the key positions.
    pub fn satisfies_key(&self, key: &KeyConstraint) -> bool {
        let mut seen = BTreeSet::new();
        for t in self.tuples_of(key.relation) {
            let k = t.project(&key.positions);
            if !seen.insert(k) {
                return false;
            }
        }
        true
    }

    /// Whether an instance satisfies every key constraint of a schema. This
    /// is the prior knowledge `K` of Section 5.2, Application 2.
    pub fn satisfies_keys(&self, schema: &Schema) -> bool {
        schema.keys().iter().all(|k| self.satisfies_key(k))
    }

    /// Renders the instance with resolved relation and constant names.
    pub fn display<'a>(&'a self, schema: &'a Schema, domain: &'a Domain) -> InstanceDisplay<'a> {
        InstanceDisplay {
            instance: self,
            schema,
            domain,
        }
    }
}

impl FromIterator<Tuple> for Instance {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Instance::from_tuples(iter)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Pretty-printer for an instance with resolved names.
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    schema: &'a Schema,
    domain: &'a Domain,
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.instance.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.display(self.schema, self.domain))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Domain;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        (schema, domain)
    }

    fn t(schema: &Schema, domain: &Domain, x: &str, y: &str) -> Tuple {
        Tuple::from_names(schema, domain, "R", &[x, y]).unwrap()
    }

    #[test]
    fn insert_remove_contains() {
        let (schema, domain) = setup();
        let mut i = Instance::new();
        assert!(i.is_empty());
        let taa = t(&schema, &domain, "a", "a");
        assert!(i.insert(taa.clone()));
        assert!(!i.insert(taa.clone()), "re-insertion reports false");
        assert!(i.contains(&taa));
        assert_eq!(i.len(), 1);
        assert!(i.remove(&taa));
        assert!(!i.remove(&taa));
        assert!(i.is_empty());
    }

    #[test]
    fn without_is_non_destructive() {
        let (schema, domain) = setup();
        let taa = t(&schema, &domain, "a", "a");
        let tab = t(&schema, &domain, "a", "b");
        let i = Instance::from_tuples([taa.clone(), tab.clone()]);
        let j = i.without(&taa);
        assert_eq!(i.len(), 2);
        assert_eq!(j.len(), 1);
        assert!(!j.contains(&taa));
        assert!(j.contains(&tab));
        let k = j.with(taa.clone());
        assert_eq!(k, i);
    }

    #[test]
    fn set_algebra() {
        let (schema, domain) = setup();
        let taa = t(&schema, &domain, "a", "a");
        let tab = t(&schema, &domain, "a", "b");
        let tbb = t(&schema, &domain, "b", "b");
        let i = Instance::from_tuples([taa.clone(), tab.clone()]);
        let j = Instance::from_tuples([tab.clone(), tbb.clone()]);
        assert_eq!(i.union(&j).len(), 3);
        assert_eq!(i.intersection(&j).len(), 1);
        assert!(i.intersection(&j).is_subset_of(&i));
        assert!(!i.is_subset_of(&j));
    }

    #[test]
    fn key_constraints_detect_duplicates() {
        let (mut schema, domain) = setup();
        let r = schema.relation_by_name("R").unwrap();
        schema.add_key(r, &[0]).unwrap();
        let taa = t(&schema, &domain, "a", "a");
        let tab = t(&schema, &domain, "a", "b");
        let tbb = t(&schema, &domain, "b", "b");
        let ok = Instance::from_tuples([taa.clone(), tbb.clone()]);
        assert!(ok.satisfies_keys(&schema));
        let bad = Instance::from_tuples([taa, tab]);
        assert!(!bad.satisfies_keys(&schema), "two tuples share key value a");
        assert!(Instance::new().satisfies_keys(&schema));
    }

    #[test]
    fn tuples_of_filters_by_relation() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["x"]);
        let s = schema.add_relation("S", &["x"]);
        let domain = Domain::with_constants(["a"]);
        let a = domain.get("a").unwrap();
        let i = Instance::from_tuples([Tuple::new(r, vec![a]), Tuple::new(s, vec![a])]);
        assert_eq!(i.tuples_of(r).count(), 1);
        assert_eq!(i.tuples_of(s).count(), 1);
    }

    #[test]
    fn display_resolves_names() {
        let (schema, domain) = setup();
        let i = Instance::from_tuples([t(&schema, &domain, "a", "b")]);
        assert_eq!(i.display(&schema, &domain).to_string(), "{R(a, b)}");
    }
}
