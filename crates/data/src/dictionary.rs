//! Dictionaries: probability distributions over tuples.
//!
//! Section 3.2 of the paper defines a *dictionary* `(D, P)` assigning to each
//! tuple `t ∈ tup(D)` an independent probability `P(t) = x_t` of occurring in
//! the database. The induced distribution over instances is Eq. (1):
//!
//! ```text
//! P[I] = ∏_{t ∈ I} x_t · ∏_{t ∉ I} (1 − x_t)
//! ```
//!
//! A [`Dictionary`] carries a [`TupleSpace`] and one exact [`Ratio`]
//! probability per tuple. Two model families are provided:
//!
//! * arbitrary per-tuple probabilities (including the uniform `P(t) = p`
//!   dictionaries used throughout Section 4), and
//! * the *expected-size* model of Section 6.2, where each tuple of a relation
//!   of arity `k` has probability `S / n^k` so that the expected instance
//!   size stays constant as the domain grows.

use crate::ratio::Ratio;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::tuple_space::TupleSpace;
use crate::value::Domain;
use crate::{DataError, Instance, Result};

/// A tuple-independent probability distribution over the instances of a
/// [`TupleSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    space: TupleSpace,
    probs: Vec<Ratio>,
}

impl Dictionary {
    /// Builds a dictionary assigning probability `p` to every tuple of the
    /// space.
    pub fn uniform(space: TupleSpace, p: Ratio) -> Result<Self> {
        if !p.is_probability() {
            return Err(DataError::InvalidProbability(format!(
                "{p} is not in [0, 1]"
            )));
        }
        let n = space.len();
        Ok(Dictionary {
            space,
            probs: vec![p; n],
        })
    }

    /// The uniform `P(t) = 1/2` dictionary used by the paper's worked
    /// examples (Examples 4.2, 4.3, 4.12).
    pub fn half(space: TupleSpace) -> Self {
        Dictionary::uniform(space, Ratio::new(1, 2)).expect("1/2 is a probability")
    }

    /// Builds a dictionary from explicit per-tuple probabilities, aligned
    /// with the tuple order of `space`.
    pub fn from_probabilities(space: TupleSpace, probs: Vec<Ratio>) -> Result<Self> {
        if probs.len() != space.len() {
            return Err(DataError::DictionarySizeMismatch {
                tuples: space.len(),
                probabilities: probs.len(),
            });
        }
        for p in &probs {
            if !p.is_probability() {
                return Err(DataError::InvalidProbability(format!(
                    "{p} is not in [0, 1]"
                )));
            }
        }
        Ok(Dictionary { space, probs })
    }

    /// Builds the expected-size dictionary of Section 6.2: every tuple of a
    /// relation with arity `k` gets probability `expected_size / |D|^k`
    /// (clamped to 1), so the expected number of tuples per relation is
    /// `expected_size` independently of the domain size.
    pub fn expected_size(
        schema: &Schema,
        domain: &Domain,
        space: TupleSpace,
        expected_size: u32,
    ) -> Result<Self> {
        let n = domain.len() as i128;
        let probs = space
            .iter()
            .map(|t| {
                let arity = schema.arity(t.relation) as u32;
                let denom = n.checked_pow(arity).unwrap_or(i128::MAX);
                let p = Ratio::new(expected_size as i128, denom.max(1));
                if p > Ratio::ONE {
                    Ratio::ONE
                } else {
                    p
                }
            })
            .collect();
        Dictionary::from_probabilities(space, probs)
    }

    /// The tuple space this dictionary is defined over.
    pub fn space(&self) -> &TupleSpace {
        &self.space
    }

    /// Number of tuples in the underlying space.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// Whether the underlying space is empty.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// The probability of the tuple at index `i` of the space.
    pub fn prob(&self, i: usize) -> Ratio {
        self.probs[i]
    }

    /// The probability of a tuple; `None` if the tuple is outside the space.
    pub fn prob_of(&self, t: &Tuple) -> Option<Ratio> {
        self.space.index_of(t).map(|i| self.probs[i])
    }

    /// Overrides the probability of the tuple at index `i`.
    pub fn set_prob(&mut self, i: usize, p: Ratio) -> Result<()> {
        if !p.is_probability() {
            return Err(DataError::InvalidProbability(format!(
                "{p} is not in [0, 1]"
            )));
        }
        self.probs[i] = p;
        Ok(())
    }

    /// All probabilities, aligned with the space's tuple order.
    pub fn probabilities(&self) -> &[Ratio] {
        &self.probs
    }

    /// Whether every tuple probability is strictly between 0 and 1. This is
    /// the non-degeneracy hypothesis of Theorem 4.8 (`P₀(t) ≠ 0, 1`).
    pub fn is_nondegenerate(&self) -> bool {
        self.probs.iter().all(|p| !p.is_zero() && !p.is_one())
    }

    /// `P[I]` for an instance given as a `u64` mask over the space
    /// (Eq. (1)).
    pub fn instance_probability_mask(&self, mask: u64) -> Ratio {
        let mut p = Ratio::ONE;
        for i in 0..self.len() {
            let factor = if mask & (1u64 << i) != 0 {
                self.probs[i]
            } else {
                self.probs[i].complement()
            };
            p *= factor;
        }
        p
    }

    /// `P[I]` for an explicit instance (Eq. (1)). Tuples outside the space
    /// are treated as impossible: if the instance contains any, the
    /// probability is 0.
    pub fn instance_probability(&self, instance: &Instance) -> Ratio {
        for t in instance.iter() {
            if !self.space.contains(t) {
                return Ratio::ZERO;
            }
        }
        let mut p = Ratio::ONE;
        for (i, t) in self.space.iter().enumerate() {
            let factor = if instance.contains(t) {
                self.probs[i]
            } else {
                self.probs[i].complement()
            };
            p *= factor;
        }
        p
    }

    /// The expected number of tuples in a sampled instance (the `m` of
    /// Example 6.2).
    pub fn expected_instance_size(&self) -> Ratio {
        self.probs.iter().copied().sum()
    }

    /// The probabilities as `f64`, for Monte-Carlo sampling.
    pub fn probabilities_f64(&self) -> Vec<f64> {
        self.probs.iter().map(|p| p.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Domain;

    fn binary_space() -> (Schema, Domain, TupleSpace) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, space)
    }

    #[test]
    fn uniform_half_matches_example_4_2_instance_probabilities() {
        // With 4 tuples at p = 1/2, every one of the 16 instances has
        // probability 1/16 (Example 4.2).
        let (_, _, space) = binary_space();
        let dict = Dictionary::half(space);
        let total: Ratio = (0..16u64)
            .map(|mask| dict.instance_probability_mask(mask))
            .sum();
        assert!(total.is_one());
        assert_eq!(dict.instance_probability_mask(0b0101), Ratio::new(1, 16));
        assert_eq!(dict.expected_instance_size(), Ratio::from_integer(2));
    }

    #[test]
    fn uniform_rejects_invalid_probability() {
        let (_, _, space) = binary_space();
        assert!(Dictionary::uniform(space, Ratio::new(3, 2)).is_err());
    }

    #[test]
    fn from_probabilities_validates_length_and_range() {
        let (_, _, space) = binary_space();
        let err =
            Dictionary::from_probabilities(space.clone(), vec![Ratio::new(1, 2); 3]).unwrap_err();
        assert!(matches!(err, DataError::DictionarySizeMismatch { .. }));
        let err =
            Dictionary::from_probabilities(space.clone(), vec![Ratio::new(-1, 2); 4]).unwrap_err();
        assert!(matches!(err, DataError::InvalidProbability(_)));
        let ok = Dictionary::from_probabilities(
            space,
            vec![Ratio::new(1, 4), Ratio::new(1, 3), Ratio::ZERO, Ratio::ONE],
        )
        .unwrap();
        assert!(!ok.is_nondegenerate(), "contains 0 and 1 probabilities");
    }

    #[test]
    fn non_uniform_instance_probability() {
        let (schema, domain, space) = binary_space();
        let probs = vec![
            Ratio::new(1, 4),
            Ratio::new(1, 2),
            Ratio::new(1, 2),
            Ratio::new(1, 2),
        ];
        let dict = Dictionary::from_probabilities(space, probs).unwrap();
        // instance containing only the first tuple of the space
        let t0 = dict.space().tuple(0).clone();
        let inst = Instance::from_tuples([t0.clone()]);
        let expected = Ratio::new(1, 4) * Ratio::new(1, 2).pow(3);
        assert_eq!(dict.instance_probability(&inst), expected);
        assert_eq!(dict.prob_of(&t0), Some(Ratio::new(1, 4)));
        // instance with a tuple outside the space has probability 0
        let mut big_domain = domain.clone();
        let c = big_domain.fresh("z");
        let r = schema.relation_by_name("R").unwrap();
        let outside = Instance::from_tuples([Tuple::new(r, vec![c, c])]);
        assert!(dict.instance_probability(&outside).is_zero());
    }

    #[test]
    fn expected_size_model_scales_with_domain() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        for n in [2usize, 4, 8] {
            let domain = Domain::with_size(n);
            let space = TupleSpace::full_with_cap(&schema, &domain, 100).unwrap();
            let dict = Dictionary::expected_size(&schema, &domain, space, 3).unwrap();
            // every tuple has probability 3 / n^2 (clamped at 1)
            let expected = Ratio::new(3, (n * n) as i128);
            let expected = if expected > Ratio::ONE {
                Ratio::ONE
            } else {
                expected
            };
            assert_eq!(dict.prob(0), expected);
            if expected < Ratio::ONE {
                assert_eq!(dict.expected_instance_size(), Ratio::from_integer(3));
            }
        }
    }

    #[test]
    fn set_prob_updates_and_validates() {
        let (_, _, space) = binary_space();
        let mut dict = Dictionary::half(space);
        dict.set_prob(0, Ratio::new(1, 3)).unwrap();
        assert_eq!(dict.prob(0), Ratio::new(1, 3));
        assert!(dict.set_prob(0, Ratio::new(5, 3)).is_err());
    }

    #[test]
    fn nondegeneracy_detects_zero_and_one() {
        let (_, _, space) = binary_space();
        let dict = Dictionary::half(space.clone());
        assert!(dict.is_nondegenerate());
        let degenerate = Dictionary::uniform(space, Ratio::ONE).unwrap();
        assert!(!degenerate.is_nondegenerate());
    }

    #[test]
    fn f64_probabilities_match() {
        let (_, _, space) = binary_space();
        let dict = Dictionary::half(space);
        let f = dict.probabilities_f64();
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }
}
