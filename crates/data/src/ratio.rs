//! Exact rational arithmetic.
//!
//! The probabilities manipulated by the paper's definitions (Eqs. (1)–(4),
//! Examples 4.2/4.3 with values like `3/16` and `1/3`) are rationals. To
//! reproduce those numbers exactly — and to decide statistical independence
//! without floating-point tolerances — this module provides a small,
//! self-contained rational type over `i128` with automatic normalization.
//!
//! The type is deliberately minimal: probabilities are always in `[0, 1]` and
//! the exhaustive procedures only multiply a couple of dozen factors, so
//! `i128` headroom (with reduction after every operation) is ample for the
//! workloads in this repository. Overflow panics with a clear message rather
//! than silently wrapping.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `numer / denom` in lowest terms with positive
/// denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    numer: i128,
    denom: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { numer: 0, denom: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { numer: 1, denom: 1 };

    /// Creates `numer / denom`, normalizing sign and reducing to lowest
    /// terms.
    ///
    /// # Panics
    /// Panics if `denom == 0`.
    pub fn new(numer: i128, denom: i128) -> Self {
        assert!(denom != 0, "Ratio with zero denominator");
        let sign = if denom < 0 { -1 } else { 1 };
        let g = gcd(numer, denom);
        if g == 0 {
            return Ratio { numer: 0, denom: 1 };
        }
        Ratio {
            numer: sign * numer / g,
            denom: sign * denom / g,
        }
    }

    /// Creates the integer `n` as a rational.
    pub fn from_integer(n: i128) -> Self {
        Ratio { numer: n, denom: 1 }
    }

    /// The numerator (in lowest terms, sign-carrying).
    pub fn numer(&self) -> i128 {
        self.numer
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.denom
    }

    /// Whether this rational is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Whether this rational is exactly one.
    pub fn is_one(&self) -> bool {
        self.numer == self.denom
    }

    /// Whether this rational lies in the closed interval `[0, 1]` (i.e. is a
    /// valid probability).
    pub fn is_probability(&self) -> bool {
        self.numer >= 0 && self.numer <= self.denom
    }

    /// `1 − self` (complement probability, the `1 − x_j` factors of Eq. (1)).
    pub fn complement(&self) -> Ratio {
        Ratio::ONE - *self
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Integer power.
    pub fn pow(&self, mut exp: u32) -> Ratio {
        let mut base = *self;
        let mut acc = Ratio::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// The absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// The reciprocal `denom / numer`.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(self.numer != 0, "reciprocal of zero");
        Ratio::new(self.denom, self.numer)
    }

    fn checked_mul_i128(a: i128, b: i128) -> i128 {
        a.checked_mul(b)
            .expect("Ratio arithmetic overflowed i128; use smaller dictionaries")
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // reduce cross terms by the gcd of denominators first to limit growth
        let g = gcd(self.denom, rhs.denom);
        let lhs_scaled = Ratio::checked_mul_i128(self.numer, rhs.denom / g);
        let rhs_scaled = Ratio::checked_mul_i128(rhs.numer, self.denom / g);
        let numer = lhs_scaled
            .checked_add(rhs_scaled)
            .expect("Ratio addition overflowed i128");
        let denom = Ratio::checked_mul_i128(self.denom / g, rhs.denom);
        Ratio::new(numer, denom)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // cross-reduce before multiplying to limit growth
        let g1 = gcd(self.numer, rhs.denom).max(1);
        let g2 = gcd(rhs.numer, self.denom).max(1);
        let numer = Ratio::checked_mul_i128(self.numer / g1, rhs.numer / g2);
        let denom = Ratio::checked_mul_i128(self.denom / g2, rhs.denom / g1);
        Ratio::new(numer, denom)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division by multiplying with the reciprocal keeps the reduce-and-
    // normalize logic in one place (`Mul`).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // denominators are positive, so cross-multiplication preserves order
        let lhs = Ratio::checked_mul_i128(self.numer, other.denom);
        let rhs = Ratio::checked_mul_i128(other.numer, self.denom);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Self {
        Ratio::from_integer(n)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Self {
        Ratio::from_integer(n as i128)
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

impl std::iter::Product for Ratio {
    fn product<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
        assert_eq!(Ratio::new(1, 2).denom(), 2);
        assert_eq!(Ratio::new(2, -4).denom(), 2);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_computation() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
        assert_eq!(a.complement(), Ratio::new(1, 2));
        assert_eq!(Ratio::new(3, 16).complement(), Ratio::new(13, 16));
    }

    #[test]
    fn example_4_2_probabilities_are_representable() {
        // the a-priori probability 3/16 and posterior 1/3 from Example 4.2
        let prior = Ratio::new(3, 16);
        let posterior = Ratio::new(1, 3);
        assert!(prior < posterior);
        assert!(prior.is_probability() && posterior.is_probability());
        assert_ne!(prior, posterior);
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(Ratio::new(1, 2).pow(4), Ratio::new(1, 16));
        assert_eq!(Ratio::new(2, 3).pow(0), Ratio::ONE);
        assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![
            Ratio::new(1, 2),
            Ratio::new(1, 3),
            Ratio::new(2, 3),
            Ratio::ZERO,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Ratio::ZERO,
                Ratio::new(1, 3),
                Ratio::new(1, 2),
                Ratio::new(2, 3)
            ]
        );
    }

    #[test]
    fn sum_and_product_fold_correctly() {
        let probs = [Ratio::new(1, 4), Ratio::new(1, 4), Ratio::new(1, 2)];
        let total: Ratio = probs.iter().copied().sum();
        assert!(total.is_one());
        let prod: Ratio = probs.iter().copied().product();
        assert_eq!(prod, Ratio::new(1, 32));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ratio::new(3, 16).to_string(), "3/16");
        assert_eq!(Ratio::from_integer(5).to_string(), "5");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn f64_conversion_is_close() {
        assert!((Ratio::new(1, 3).to_f64() - 0.333_333).abs() < 1e-5);
    }

    #[test]
    fn probability_range_check() {
        assert!(Ratio::new(1, 2).is_probability());
        assert!(Ratio::ZERO.is_probability());
        assert!(Ratio::ONE.is_probability());
        assert!(!Ratio::new(3, 2).is_probability());
        assert!(!Ratio::new(-1, 2).is_probability());
    }
}
