//! Compact bitsets used to encode instances over a fixed tuple space.
//!
//! The exhaustive decision procedures (Definition 4.1 checked literally,
//! Definition 4.4 checked by brute force, polynomial construction via
//! Eq. (5)) enumerate every subset of a small tuple space. A [`BitSet`]
//! stores one such subset as packed 64-bit words.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of tuples over which exhaustive `2^n` instance enumeration
/// is permitted. Beyond this the exhaustive procedures refuse to run and
/// callers must use the criterion-based (critical-tuple) procedures or
/// Monte-Carlo estimation instead.
pub const MAX_ENUMERABLE: usize = 24;

/// A fixed-capacity bitset over `len` positions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitset with capacity for `len` positions.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bitset with every position set.
    pub fn full(len: usize) -> Self {
        let mut bs = BitSet::new(len);
        for i in 0..len {
            bs.insert(i);
        }
        bs
    }

    /// Creates a bitset of capacity `len` from a `u64` mask (positions ≥ 64
    /// are left unset). This is the fast path used by subset enumeration.
    pub fn from_mask(len: usize, mask: u64) -> Self {
        let mut bs = BitSet::new(len);
        if !bs.words.is_empty() {
            bs.words[0] = if len >= 64 {
                mask
            } else {
                mask & ((1u64 << len) - 1)
            };
        }
        bs
    }

    /// Number of addressable positions.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets position `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears position `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether position `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set positions.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no position is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Returns a copy with position `i` removed (the `I − {t}` operation of
    /// Definition 4.4).
    pub fn without(&self, i: usize) -> BitSet {
        let mut c = self.clone();
        c.remove(i);
        c
    }

    /// Set union.
    pub fn union(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len);
        BitSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the two bitsets share no position.
    pub fn is_disjoint_from(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }
}

impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over all `2^n` subsets of `{0, .., n-1}` as `u64` masks, in
/// increasing mask order. Refuses to be constructed for `n >`
/// [`MAX_ENUMERABLE`] (use [`subsets_checked`]).
pub fn subsets(n: usize) -> impl Iterator<Item = u64> {
    assert!(
        n <= MAX_ENUMERABLE,
        "refusing to enumerate 2^{n} subsets (cap is 2^{MAX_ENUMERABLE})"
    );
    0..(1u64 << n)
}

/// Fallible version of [`subsets`].
pub fn subsets_checked(n: usize) -> crate::Result<impl Iterator<Item = u64>> {
    if n > MAX_ENUMERABLE {
        return Err(crate::DataError::EnumerationTooLarge(n));
    }
    Ok(0..(1u64 << n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut bs = BitSet::new(100);
        bs.insert(0);
        bs.insert(63);
        bs.insert(64);
        bs.insert(99);
        assert!(bs.contains(0) && bs.contains(63) && bs.contains(64) && bs.contains(99));
        assert!(!bs.contains(50));
        assert_eq!(bs.count(), 4);
        bs.remove(63);
        assert!(!bs.contains(63));
        assert_eq!(bs.count(), 3);
    }

    #[test]
    fn iter_yields_sorted_positions() {
        let mut bs = BitSet::new(130);
        for i in [5, 64, 128, 7] {
            bs.insert(i);
        }
        let v: Vec<_> = bs.iter().collect();
        assert_eq!(v, vec![5, 7, 64, 128]);
    }

    #[test]
    fn from_mask_masks_out_of_range_bits() {
        let bs = BitSet::from_mask(3, 0b1111);
        assert_eq!(bs.count(), 3);
        assert!(bs.contains(2));
    }

    #[test]
    fn without_removes_a_single_position() {
        let bs = BitSet::from_mask(4, 0b1111);
        let w = bs.without(2);
        assert!(!w.contains(2));
        assert_eq!(w.count(), 3);
        assert_eq!(bs.count(), 4, "original is unchanged");
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_mask(6, 0b001011);
        let b = BitSet::from_mask(6, 0b001110);
        assert_eq!(a.union(&b), BitSet::from_mask(6, 0b001111));
        assert_eq!(a.intersection(&b), BitSet::from_mask(6, 0b001010));
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let c = BitSet::from_mask(6, 0b110000);
        assert!(a.is_disjoint_from(&c));
        assert!(!a.is_disjoint_from(&b));
    }

    #[test]
    fn full_and_empty() {
        let f = BitSet::full(10);
        assert_eq!(f.count(), 10);
        assert!(!f.is_empty());
        assert!(BitSet::new(10).is_empty());
    }

    #[test]
    fn subsets_enumerates_all_masks() {
        let all: Vec<u64> = subsets(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], 0);
        assert_eq!(all[7], 7);
    }

    #[test]
    fn subsets_checked_rejects_large_spaces() {
        assert!(subsets_checked(MAX_ENUMERABLE).is_ok());
        assert!(subsets_checked(MAX_ENUMERABLE + 1).is_err());
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn subsets_panics_on_large_spaces() {
        let _ = subsets(MAX_ENUMERABLE + 1);
    }

    #[test]
    fn display_lists_set_positions() {
        let bs = BitSet::from_mask(5, 0b10101);
        assert_eq!(bs.to_string(), "{0, 2, 4}");
    }
}
