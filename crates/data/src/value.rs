//! Constants and finite domains.
//!
//! The paper fixes a finite domain `D` containing every value that can occur
//! in any attribute of any relation (Section 3.1). Constants are interned:
//! a [`Value`] is a small index into its [`Domain`], and the interning order
//! doubles as the total order used by comparison predicates (`<`, `≤`).

use crate::error::DataError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned constant of the finite domain `D`.
///
/// A `Value` is only meaningful relative to the [`Domain`] that produced it.
/// The ordering of `Value`s (by interning index) is the total order used to
/// interpret order predicates in conjunctive queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(pub u32);

impl Value {
    /// The raw interning index of this constant.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A finite, totally ordered domain of named constants.
///
/// ```
/// use qvsec_data::Domain;
/// let mut d = Domain::new();
/// let a = d.add("a");
/// let b = d.add("b");
/// assert!(a < b);
/// assert_eq!(d.name(a), "a");
/// assert_eq!(d.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, Value>,
    fresh_counter: u64,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Domain {
            names: Vec::new(),
            by_name: HashMap::new(),
            fresh_counter: 0,
        }
    }

    /// Creates a domain containing the given constants, in order.
    pub fn with_constants<I, S>(constants: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut d = Domain::new();
        for c in constants {
            d.add(c.as_ref());
        }
        d
    }

    /// Creates a domain of `n` anonymous constants named `c0..c{n-1}`.
    ///
    /// Useful for the "large enough domain" constructions of Proposition 4.9.
    pub fn with_size(n: usize) -> Self {
        let mut d = Domain::new();
        for i in 0..n {
            d.add(&format!("c{i}"));
        }
        d
    }

    /// Interns a constant, returning its [`Value`]. Adding an existing name
    /// returns the existing value.
    pub fn add(&mut self, name: &str) -> Value {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Value(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    /// Adds a fresh constant guaranteed to be distinct from all existing
    /// constants. The `prefix` is purely cosmetic.
    ///
    /// Fresh constants implement the "distinct constant `c_x` per variable"
    /// device used by the *fine instances* of Appendix A.
    pub fn fresh(&mut self, prefix: &str) -> Value {
        loop {
            let name = format!("{prefix}${}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&name) {
                return self.add(&name);
            }
        }
    }

    /// Looks up a constant by name.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.by_name.get(name).copied()
    }

    /// Looks up a constant by name, erroring if absent.
    pub fn require(&self, name: &str) -> Result<Value> {
        self.get(name)
            .ok_or_else(|| DataError::UnknownConstant(name.to_string()))
    }

    /// The display name of a constant.
    pub fn name(&self, value: Value) -> &str {
        &self.names[value.index()]
    }

    /// Whether the domain contains the given value (i.e. the value was
    /// produced by this domain and not a larger one).
    pub fn contains(&self, value: Value) -> bool {
        value.index() < self.names.len()
    }

    /// Number of constants in the domain.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all constants in interning (and comparison) order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.names.len() as u32).map(Value)
    }

    /// Iterates over `(value, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Value, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Value(i as u32), n.as_str()))
    }

    /// Rebuilds the name index (needed after deserialization, which skips the
    /// lookup table).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Value(i as u32)))
            .collect();
    }

    /// Extends the domain until it contains at least `target` constants,
    /// adding fresh constants as needed. Returns the newly added constants.
    ///
    /// This is the operation used to build the "large enough" active domain of
    /// Proposition 4.9 (`|D| ≥ n(n+1)` where `n` bounds the variables and
    /// constants of the queries under analysis).
    pub fn pad_to(&mut self, target: usize) -> Vec<Value> {
        let mut added = Vec::new();
        while self.len() < target {
            added.push(self.fresh("pad"));
        }
        added
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Domain::new();
        let a1 = d.add("a");
        let a2 = d.add("a");
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn values_are_ordered_by_insertion() {
        let d = Domain::with_constants(["x", "y", "z"]);
        let vals: Vec<_> = d.values().collect();
        assert_eq!(vals.len(), 3);
        assert!(vals[0] < vals[1] && vals[1] < vals[2]);
        assert_eq!(d.name(vals[2]), "z");
    }

    #[test]
    fn fresh_constants_are_distinct() {
        let mut d = Domain::with_constants(["a"]);
        let f1 = d.fresh("v");
        let f2 = d.fresh("v");
        assert_ne!(f1, f2);
        assert_eq!(d.len(), 3);
        assert!(d.name(f1).starts_with("v$"));
    }

    #[test]
    fn fresh_avoids_existing_names() {
        let mut d = Domain::new();
        d.add("v$0");
        let f = d.fresh("v");
        assert_ne!(d.name(f), "v$0");
    }

    #[test]
    fn require_reports_unknown_constants() {
        let d = Domain::with_constants(["a"]);
        assert!(d.require("a").is_ok());
        assert_eq!(
            d.require("zzz").unwrap_err(),
            DataError::UnknownConstant("zzz".to_string())
        );
    }

    #[test]
    fn with_size_builds_numbered_constants() {
        let d = Domain::with_size(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.name(Value(3)), "c3");
    }

    #[test]
    fn pad_to_extends_domain() {
        let mut d = Domain::with_constants(["a", "b"]);
        let added = d.pad_to(6);
        assert_eq!(added.len(), 4);
        assert_eq!(d.len(), 6);
        // padding an already-large domain is a no-op
        assert!(d.pad_to(3).is_empty());
    }

    #[test]
    fn display_lists_names() {
        let d = Domain::with_constants(["a", "b"]);
        assert_eq!(d.to_string(), "{a, b}");
    }

    #[test]
    fn contains_respects_bounds() {
        let d = Domain::with_constants(["a", "b"]);
        assert!(d.contains(Value(1)));
        assert!(!d.contains(Value(2)));
    }
}
