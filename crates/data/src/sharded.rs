//! A sharded, byte-budgeted LRU cache.
//!
//! Every engine memo layer used to be one [`LruCache`] behind one `Mutex`,
//! so concurrent tenants' cache lookups serialized even when they touched
//! unrelated keys. A [`ShardedLruCache`] splits the key space into
//! power-of-two shards selected by a **deterministic** FNV-1a hash of the
//! key (no per-process hash seeds — the same request trace shards
//! identically on every run, the `SessionRegistry` tenant-map pattern), and
//! each shard is its own independently-locked [`LruCache`].
//!
//! The byte budget is split across shards up front — `budget / n` each,
//! with the remainder spread one byte at a time over the first shards — so
//! eviction decisions never depend on which other shards are busy: a
//! shard's evictions are a function of the keys routed to it alone, which
//! keeps single-threaded replays byte-identical to concurrent runs
//! (property-tested in the core crate's sharded-memo stress test).
//!
//! Transparency is inherited from [`LruCache`]: eviction only discards
//! derived state, so a later request misses and recomputes. Aggregate
//! counters (`evictions`, `evicted_bytes`, `resident_bytes`, `len`) sum the
//! per-shard counters; [`ShardedLruCache::per_shard_evictions`] exposes the
//! per-shard split for tests asserting the sum matches the old globals.

use crate::lru::LruCache;
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic [`Hasher`]: FNV-1a over the written bytes, no
/// per-process seed. Shard selection must be reproducible across runs so
/// eviction traces (and therefore warm/cold cache behaviour) replay
/// byte-identically.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A sharded LRU map. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Box<[Mutex<LruCache<K, V>>]>,
    mask: u64,
}

impl<K: Eq + Hash + Clone, V> ShardedLruCache<K, V> {
    /// A cache split into `shards` shards (rounded up to a power of two,
    /// minimum 1) sharing one total byte `budget` (`None` never evicts).
    /// Each shard gets `budget / n` bytes, with the remainder spread one
    /// byte at a time over the first shards, so the per-shard budgets
    /// always sum exactly to the total.
    pub fn new(shards: usize, budget: Option<usize>) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|i| {
                let per_shard = budget.map(|total| total / n + usize::from(i < total % n));
                Mutex::new(LruCache::new(per_shard))
            })
            .collect();
        ShardedLruCache {
            shards,
            mask: n as u64 - 1,
        }
    }

    /// Number of shards the key space is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard serving `key`.
    pub fn shard_index<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        let mut hasher = Fnv1a(FNV_OFFSET);
        key.hash(&mut hasher);
        (hasher.finish() & self.mask) as usize
    }

    /// Locks and returns the shard serving `key`. All reads and writes for
    /// the key go through this guard — `get` on a different shard can
    /// proceed concurrently.
    pub fn shard<Q>(&self, key: &Q) -> MutexGuard<'_, LruCache<K, V>>
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
    }

    /// Total entries across every shard.
    pub fn len(&self) -> usize {
        self.fold(|c| c.len())
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted across every shard over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.fold(|c| c.evictions())
    }

    /// Approximate bytes evicted across every shard.
    pub fn evicted_bytes(&self) -> u64 {
        self.fold(|c| c.evicted_bytes())
    }

    /// Approximate bytes currently resident across every shard.
    pub fn resident_bytes(&self) -> usize {
        self.fold(|c| c.resident_bytes())
    }

    /// Calls `f` with every resident key, shard by shard (each shard's lock
    /// is held only for its own walk). Order is unspecified; recency and
    /// counters are untouched — an introspection walk for `explain` probes.
    pub fn for_each_key(&self, mut f: impl FnMut(&K)) {
        for shard in self.shards.iter() {
            for key in shard.lock().expect("cache shard poisoned").keys() {
                f(key);
            }
        }
    }

    /// Per-shard lifetime eviction counters, in shard order. Sums to
    /// [`ShardedLruCache::evictions`].
    pub fn per_shard_evictions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").evictions())
            .collect()
    }

    fn fold<T: std::iter::Sum>(&self, f: impl Fn(&LruCache<K, V>) -> T) -> T {
        self.shards
            .iter()
            .map(|s| f(&s.lock().expect("cache shard poisoned")))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(5, None);
        assert_eq!(cache.num_shards(), 8);
        let one: ShardedLruCache<String, u32> = ShardedLruCache::new(0, None);
        assert_eq!(one.num_shards(), 1);
    }

    #[test]
    fn per_shard_budgets_sum_exactly_to_the_total() {
        // 103 bytes over 8 shards: 7 shards x 12 + 1 x 19... the remainder
        // (103 % 8 = 7) goes one byte at a time to the first 7 shards.
        let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(8, Some(103));
        let total: usize = (0..cache.num_shards())
            .map(|i| {
                cache.shards[i]
                    .lock()
                    .unwrap()
                    .budget()
                    .expect("budgeted shard")
            })
            .sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn shard_selection_is_deterministic_and_key_local() {
        let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(8, None);
        for key in ["a", "b", "some-long-canonical-form", ""] {
            assert_eq!(cache.shard_index(key), cache.shard_index(key));
        }
        // &str and String hash identically, so lookups by borrowed form
        // land on the shard the owned insert used.
        let owned = String::from("V(x) :- R(x, y)");
        assert_eq!(
            cache.shard_index::<str>(&owned),
            cache.shard_index::<str>("V(x) :- R(x, y)")
        );
    }

    #[test]
    fn inserts_route_to_shards_and_aggregate_counters_sum() {
        let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(4, Some(40));
        // Enough keys that some shard holds several entries; per-shard
        // budget is 10 bytes, each entry weighs 8.
        for i in 0..32u32 {
            let key = format!("key-{i}");
            cache.shard(key.as_str()).insert(key.clone(), i, 8);
        }
        assert!(cache.evictions() > 0, "tight shard budgets must evict");
        assert_eq!(
            cache.per_shard_evictions().iter().sum::<u64>(),
            cache.evictions(),
            "per-shard counters sum to the aggregate"
        );
        assert!(
            cache.resident_bytes() <= 40 + 4 * 8,
            "within budget + one oversized entry per shard"
        );
        // Every key is either resident in its own shard or was evicted
        // from it — never silently lost to a different shard.
        let mut resident = 0;
        for i in 0..32u32 {
            let key = format!("key-{i}");
            if cache.shard(key.as_str()).get(key.as_str()).is_some() {
                resident += 1;
            }
        }
        assert_eq!(resident, cache.len());
    }

    #[test]
    fn unbounded_shards_never_evict() {
        let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(8, None);
        for i in 0..100u32 {
            let key = format!("key-{i}");
            cache.shard(key.as_str()).insert(key.clone(), i, 1 << 20);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.evictions(), 0);
    }
}
