//! Tuple spaces: finite enumerations of candidate tuples.
//!
//! The paper works with `tup(D)`, the set of all tuples over all relations
//! that can be formed from the domain `D` (Section 3.1). For realistic
//! domains this set is astronomically large, so the exhaustive procedures in
//! this workspace operate on a [`TupleSpace`]: either the *full* `tup(D)` of
//! a deliberately tiny domain, or an explicit *support set* of tuples outside
//! of which the queries under analysis are insensitive (their critical tuples
//! and lineage are always contained in such a support set).

use crate::bitset::{subsets_checked, BitSet, MAX_ENUMERABLE};
use crate::instance::Instance;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Domain;
use crate::{DataError, Result};
use std::collections::HashMap;

/// Default cap on the size of a fully enumerated `tup(D)`.
pub const DEFAULT_FULL_SPACE_CAP: usize = 4096;

/// A finite, ordered list of tuples with O(1) index lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleSpace {
    tuples: Vec<Tuple>,
    index: HashMap<Tuple, usize>,
}

impl TupleSpace {
    /// Builds the full tuple space `tup(D)` for `schema` over `domain`,
    /// refusing if it would contain more than `DEFAULT_FULL_SPACE_CAP`
    /// tuples.
    pub fn full(schema: &Schema, domain: &Domain) -> Result<Self> {
        Self::full_with_cap(schema, domain, DEFAULT_FULL_SPACE_CAP)
    }

    /// Builds the full tuple space `tup(D)` with an explicit cap.
    pub fn full_with_cap(schema: &Schema, domain: &Domain, cap: usize) -> Result<Self> {
        let d = domain.len() as u128;
        let mut required: u128 = 0;
        for rel in schema.relation_ids() {
            required = required.saturating_add(d.saturating_pow(schema.arity(rel) as u32));
        }
        if required > cap as u128 {
            return Err(DataError::TupleSpaceTooLarge { required, cap });
        }
        let mut tuples = Vec::with_capacity(required as usize);
        for rel in schema.relation_ids() {
            let arity = schema.arity(rel);
            // mixed-radix enumeration of all |D|^arity value vectors
            let mut counters = vec![0usize; arity];
            if domain.is_empty() && arity > 0 {
                continue;
            }
            loop {
                let values = counters
                    .iter()
                    .map(|&c| domain.values().nth(c).expect("counter in range"))
                    .collect();
                tuples.push(Tuple::new(rel, values));
                // increment
                let mut i = arity;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    counters[i] += 1;
                    if counters[i] < domain.len() {
                        break;
                    }
                    counters[i] = 0;
                    if i == 0 {
                        // overflowed the most significant digit: done
                        counters.clear();
                        break;
                    }
                }
                if counters.is_empty() || arity == 0 {
                    break;
                }
            }
        }
        Ok(Self::from_tuples(tuples))
    }

    /// Builds a tuple space from an explicit support set. Duplicates are
    /// removed and tuples are sorted to give a canonical ordering.
    ///
    /// Unlike [`TupleSpace::full`], explicit spaces are **not** capped: they
    /// serve as interned universes for [`crate::candidates::CandidateSet`]s,
    /// whose chunked-word bitsets scale far past
    /// [`DEFAULT_FULL_SPACE_CAP`] (only the exhaustive `2^n` instance
    /// enumeration of [`TupleSpace::instances`] stays mask-limited).
    pub fn from_tuples(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort();
        tuples.dedup();
        let index = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        TupleSpace { tuples, index }
    }

    /// Number of tuples in the space.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at index `i`.
    pub fn tuple(&self, i: usize) -> &Tuple {
        &self.tuples[i]
    }

    /// The index of a tuple, if it belongs to the space.
    pub fn index_of(&self, t: &Tuple) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// Whether the space contains the given tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains_key(t)
    }

    /// Iterates over the tuples in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Converts a bitset over this space into an [`Instance`].
    pub fn instance_from_bitset(&self, bits: &BitSet) -> Instance {
        Instance::from_tuples(bits.iter().map(|i| self.tuples[i].clone()))
    }

    /// Converts a `u64` mask over this space into an [`Instance`].
    pub fn instance_from_mask(&self, mask: u64) -> Instance {
        Instance::from_tuples(
            (0..self.len().min(64))
                .filter(|i| mask & (1u64 << i) != 0)
                .map(|i| self.tuples[i].clone()),
        )
    }

    /// Converts an [`Instance`] into a bitset over this space. Tuples of the
    /// instance outside the space are ignored (they cannot affect queries
    /// whose support is inside the space).
    pub fn bitset_from_instance(&self, instance: &Instance) -> BitSet {
        let mut bs = BitSet::new(self.len());
        for t in instance.iter() {
            if let Some(i) = self.index_of(t) {
                bs.insert(i);
            }
        }
        bs
    }

    /// Iterates over all `2^n` instances of this space, as `(mask, Instance)`
    /// pairs. Errors if the space is larger than [`MAX_ENUMERABLE`].
    pub fn instances(&self) -> Result<impl Iterator<Item = (u64, Instance)> + '_> {
        if self.len() > MAX_ENUMERABLE {
            return Err(DataError::EnumerationTooLarge(self.len()));
        }
        let it = subsets_checked(self.len())?;
        Ok(it.map(move |mask| (mask, self.instance_from_mask(mask))))
    }

    /// The union of this space with another (canonical order is recomputed).
    pub fn union(&self, other: &TupleSpace) -> TupleSpace {
        let mut all = self.tuples.clone();
        all.extend(other.tuples.iter().cloned());
        TupleSpace::from_tuples(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Domain;

    fn binary_r() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        (schema, domain)
    }

    #[test]
    fn full_space_of_binary_relation_over_two_constants_has_four_tuples() {
        // Example 4.2 of the paper: R(X,Y), D = {a,b} gives 4 possible tuples
        // and 16 instances.
        let (schema, domain) = binary_r();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        assert_eq!(space.len(), 4);
        let instances: Vec<_> = space.instances().unwrap().collect();
        assert_eq!(instances.len(), 16);
    }

    #[test]
    fn full_space_respects_cap() {
        let (schema, domain) = binary_r();
        let err = TupleSpace::full_with_cap(&schema, &domain, 3).unwrap_err();
        assert!(matches!(
            err,
            DataError::TupleSpaceTooLarge {
                required: 4,
                cap: 3
            }
        ));
    }

    #[test]
    fn full_space_handles_multiple_relations_and_zero_arity() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x"]);
        schema.add_relation("Unit", &[]);
        let domain = Domain::with_constants(["a", "b", "c"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        // 3 unary tuples + 1 nullary tuple
        assert_eq!(space.len(), 4);
    }

    #[test]
    fn index_roundtrip() {
        let (schema, domain) = binary_r();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        for i in 0..space.len() {
            let t = space.tuple(i).clone();
            assert_eq!(space.index_of(&t), Some(i));
            assert!(space.contains(&t));
        }
        let r = schema.relation_by_name("R").unwrap();
        let bogus = Tuple::new(r, vec![crate::Value(99), crate::Value(99)]);
        assert_eq!(space.index_of(&bogus), None);
    }

    #[test]
    fn from_tuples_dedupes_and_sorts() {
        let (schema, domain) = binary_r();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let t1 = Tuple::new(r, vec![b, a]);
        let t2 = Tuple::new(r, vec![a, a]);
        let space = TupleSpace::from_tuples(vec![t1.clone(), t2.clone(), t1.clone()]);
        assert_eq!(space.len(), 2);
        assert!(space.tuple(0) <= space.tuple(1));
    }

    #[test]
    fn mask_and_bitset_conversions_agree() {
        let (schema, domain) = binary_r();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let inst = space.instance_from_mask(0b0110);
        assert_eq!(inst.len(), 2);
        let bits = space.bitset_from_instance(&inst);
        assert_eq!(bits, BitSet::from_mask(4, 0b0110));
        let back = space.instance_from_bitset(&bits);
        assert_eq!(back, inst);
    }

    #[test]
    fn union_merges_spaces() {
        let (schema, domain) = binary_r();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s1 = TupleSpace::from_tuples(vec![Tuple::new(r, vec![a, a])]);
        let s2 =
            TupleSpace::from_tuples(vec![Tuple::new(r, vec![b, b]), Tuple::new(r, vec![a, a])]);
        let u = s1.union(&s2);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn instances_refuses_oversized_spaces() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_size(6); // 36 tuples > MAX_ENUMERABLE
        let space = TupleSpace::full(&schema, &domain).unwrap();
        assert!(space.instances().is_err());
    }
}
