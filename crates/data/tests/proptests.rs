//! Property-based tests for the data substrate.

use proptest::prelude::*;
use qvsec_data::{BitSet, Dictionary, Domain, Instance, Ratio, Schema, Tuple, TupleSpace};

fn small_ratio() -> impl Strategy<Value = Ratio> {
    (0i128..=12, 1i128..=12).prop_map(|(n, d)| Ratio::new(n.min(d), d))
}

proptest! {
    #[test]
    fn ratio_addition_is_commutative_and_associative(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_multiplication_distributes_over_addition(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_complement_is_involutive(a in small_ratio()) {
        prop_assert_eq!(a.complement().complement(), a);
        prop_assert_eq!(a + a.complement(), Ratio::ONE);
    }

    #[test]
    fn ratio_ordering_agrees_with_f64(a in small_ratio(), b in small_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64() + 1e-12);
        }
    }

    #[test]
    fn bitset_insert_then_contains(indices in proptest::collection::vec(0usize..100, 0..30)) {
        let mut bs = BitSet::new(100);
        for &i in &indices {
            bs.insert(i);
        }
        for &i in &indices {
            prop_assert!(bs.contains(i));
        }
        let collected: Vec<usize> = bs.iter().collect();
        let mut expected: Vec<usize> = indices.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn bitset_union_contains_both_operands(xs in proptest::collection::vec(0usize..60, 0..20),
                                           ys in proptest::collection::vec(0usize..60, 0..20)) {
        let mut a = BitSet::new(60);
        let mut b = BitSet::new(60);
        for &i in &xs { a.insert(i); }
        for &i in &ys { b.insert(i); }
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        prop_assert_eq!(u.intersection(&a), a.clone());
    }

    #[test]
    fn instance_probabilities_sum_to_one(probs in proptest::collection::vec((0i128..=4, 1i128..=4), 3..=3)) {
        // Build a 3-tuple space with arbitrary per-tuple probabilities and
        // check Σ_I P[I] = 1 (Eq. (1) defines a probability distribution).
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["x"]);
        let domain = Domain::with_constants(["a", "b", "c"]);
        let vals: Vec<_> = domain.values().collect();
        let space = TupleSpace::from_tuples(vals.iter().map(|&v| Tuple::new(r, vec![v])).collect());
        let ratios: Vec<Ratio> = probs.iter().map(|&(n, d)| Ratio::new(n.min(d), d)).collect();
        let dict = Dictionary::from_probabilities(space, ratios).unwrap();
        let total: Ratio = (0..8u64).map(|m| dict.instance_probability_mask(m)).sum();
        prop_assert!(total.is_one());
    }

    #[test]
    fn domain_padding_reaches_target(base in 0usize..5, target in 0usize..20) {
        let mut d = Domain::with_size(base);
        d.pad_to(target);
        prop_assert!(d.len() >= target);
        prop_assert!(d.len() >= base);
    }
}

#[test]
fn instance_union_is_idempotent_and_monotone() {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", &["x", "y"]);
    let domain = Domain::with_constants(["a", "b", "c"]);
    let vals: Vec<_> = domain.values().collect();
    let mut tuples = Vec::new();
    for &x in &vals {
        for &y in &vals {
            tuples.push(Tuple::new(r, vec![x, y]));
        }
    }
    let i = Instance::from_tuples(tuples[0..4].iter().cloned());
    let j = Instance::from_tuples(tuples[2..6].iter().cloned());
    assert_eq!(i.union(&i), i);
    assert!(i.is_subset_of(&i.union(&j)));
    assert!(j.is_subset_of(&i.union(&j)));
    assert_eq!(i.union(&j).len(), 6);
}
