//! Satellite: the committed SQL spec translations are byte-equivalent to
//! their datalog originals.
//!
//! `specs/table1_sql.json` and `specs/serve_requests_sql.ndjson` restate
//! `specs/table1.json` and `specs/serve_requests.ndjson` in the safe-SQL
//! front end. Because both spellings compile to the same canonical
//! conjunctive queries, the reports they produce must be byte-identical —
//! the only tolerated difference is per-tenant `approx_bytes` accounting,
//! which measures the *serialized* queries (variable names included, by
//! design). CI replays the same pair over a real TCP server.

use serde_json::Value;
use std::path::PathBuf;

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

fn read_spec(name: &str) -> String {
    let path = spec_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

#[test]
fn table1_sql_spec_reports_are_byte_identical_to_the_datalog_original() {
    let datalog = qvsec_cli::run_spec(&read_spec("table1.json"), false).unwrap();
    let sql = qvsec_cli::run_spec(&read_spec("table1_sql.json"), false).unwrap();
    assert_eq!(
        serde_json::to_string(&datalog).unwrap(),
        serde_json::to_string(&sql).unwrap(),
        "SQL-spelled Table 1 audits must hit the same canonical queries"
    );
}

/// Strips the members that legitimately differ between the two front ends:
/// `approx_bytes` counts serialized query bytes, and serialized queries
/// keep their (cosmetic, canonicalized-away) variable names.
fn without_approx_bytes(value: &Value) -> Value {
    match value {
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .filter(|(k, _)| k != "approx_bytes")
                .map(|(k, v)| (k.clone(), without_approx_bytes(v)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(without_approx_bytes).collect()),
        other => other.clone(),
    }
}

#[test]
fn serve_request_sql_script_responses_match_the_datalog_script() {
    let spec = qvsec_cli::parse_serve_spec(&read_spec("serve_employee.json")).unwrap();
    let drive = |script: &str| -> Vec<String> {
        let registry = qvsec_cli::build_registry(&spec).unwrap();
        script
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| {
                let (response, shutdown) = qvsec_serve::handle_request(&registry, line);
                assert!(!shutdown);
                assert_eq!(
                    response.field("ok"),
                    &Value::Bool(true),
                    "{line} -> {response:?}"
                );
                serde_json::to_string(&without_approx_bytes(&response)).unwrap()
            })
            .collect()
    };
    let datalog = drive(&read_spec("serve_requests.ndjson"));
    let sql = drive(&read_spec("serve_requests_sql.ndjson"));
    assert_eq!(datalog.len(), sql.len());
    for (i, (d, s)) in datalog.iter().zip(&sql).enumerate() {
        assert_eq!(d, s, "response #{i} diverged between the two front ends");
    }
}
