//! End-to-end smoke tests: run the compiled `qvsec-cli` binary on the
//! checked-in spec files and validate its JSON output.

use std::process::Command;

fn repo_root() -> std::path::PathBuf {
    // crates/cli -> crates -> repo root
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root exists")
        .to_path_buf()
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_qvsec-cli"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("qvsec-cli runs")
}

fn check_table1_reports(stdout: &[u8]) {
    let text = std::str::from_utf8(stdout).expect("UTF-8 output");
    let value = serde_json::parse(text).expect("stdout is valid JSON");
    let reports = value.as_array().expect("a JSON array of reports");
    assert_eq!(reports.len(), 4);
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|r| r.field("name").as_str() == Some(name))
            .unwrap_or_else(|| panic!("report `{name}` present"))
    };
    // The paper's verdicts: rows 1-3 are insecure (total/partial/minute),
    // row 4 is perfectly secure.
    assert_eq!(by_name("row1-total").field("class").as_str(), Some("Total"));
    assert_eq!(
        by_name("row2-partial-collusion").field("class").as_str(),
        Some("Partial")
    );
    assert_eq!(
        by_name("row3-minute").field("class").as_str(),
        Some("Minute")
    );
    let row4 = by_name("row4-secure");
    assert_eq!(row4.field("class").as_str(), Some("NoDisclosure"));
    assert_eq!(row4.field("secure"), &serde_json::Value::Bool(true));
}

#[test]
fn audits_the_json_table1_spec() {
    let out = run_cli(&["audit", "--spec", "specs/table1.json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    check_table1_reports(&out.stdout);
}

#[test]
fn audits_the_toml_table1_spec_identically() {
    let json = run_cli(&["audit", "--spec", "specs/table1.json"]);
    let toml = run_cli(&["audit", "--spec", "specs/table1.toml"]);
    assert!(json.status.success() && toml.status.success());
    assert_eq!(json.stdout, toml.stdout, "formats must agree");
    let pretty = run_cli(&["audit", "--spec", "specs/table1.toml", "--pretty"]);
    assert!(pretty.status.success());
    check_table1_reports(&pretty.stdout);
}

#[test]
fn sequential_flag_changes_nothing() {
    let par = run_cli(&["audit", "--spec", "specs/table1.json"]);
    let seq = run_cli(&["audit", "--spec", "specs/table1.json", "--sequential"]);
    assert_eq!(par.stdout, seq.stdout);
}

#[test]
fn bad_invocations_fail_with_diagnostics() {
    let out = run_cli(&["audit"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spec"));
    let out = run_cli(&["audit", "--spec", "/nonexistent/spec.json"]);
    assert!(!out.status.success());
    let out = run_cli(&["frobnicate"]);
    assert!(!out.status.success());
    let out = run_cli(&[
        "session",
        "--spec",
        "specs/session_collusion.json",
        "--sequential",
    ]);
    assert!(!out.status.success(), "--sequential is audit-only");
}

#[test]
fn replays_the_committed_session_script() {
    let out = run_cli(&["session", "--spec", "specs/session_collusion.json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::str::from_utf8(&out.stdout).expect("UTF-8 output");
    let value = serde_json::parse(text).expect("stdout is valid JSON");
    let entries = value.as_array().expect("a JSON array of step entries");
    assert_eq!(entries.len(), 6, "one entry per script step");

    // Steps 1-2: publishes; both insecure (the Bob/Carol collusion).
    for (i, name) in [(0usize, "bob"), (1, "carol")] {
        let e = &entries[i];
        assert_eq!(e.field("view").as_str(), Some(name));
        assert_eq!(e.field("committed"), &serde_json::Value::Bool(true));
        assert_eq!(
            e.field("report").field("secure"),
            &serde_json::Value::Bool(false)
        );
    }
    // Warm steps serve compiled artifacts from cache.
    let carol_cache = entries[1].field("cache");
    assert!(carol_cache.field("crit_cache_hits").as_int().unwrap() > 0);
    assert!(carol_cache.field("compile_cache_hits").as_int().unwrap() > 0);

    // Snapshot / candidate / restore / replayed publish.
    assert_eq!(entries[2].field("snapshot").as_str(), Some("pre-dana"));
    assert_eq!(
        entries[3].field("committed"),
        &serde_json::Value::Bool(false),
        "candidate step does not commit"
    );
    assert_eq!(entries[4].field("restored").as_str(), Some("pre-dana"));
    let dana = &entries[5];
    assert_eq!(dana.field("view").as_str(), Some("dana"));
    assert_eq!(
        dana.field("cache").field("crit_cache_misses").as_int(),
        Some(0),
        "replaying after the what-if is served entirely from the memo"
    );
    // The candidate and the committed replay audit the same prefix: their
    // cumulative reports agree.
    assert_eq!(
        serde_json::to_string(entries[3].field("report")).unwrap(),
        serde_json::to_string(dana.field("report")).unwrap()
    );

    // Deterministic: replaying the script reproduces the bytes.
    let again = run_cli(&["session", "--spec", "specs/session_collusion.json"]);
    assert_eq!(out.stdout, again.stdout);
}
