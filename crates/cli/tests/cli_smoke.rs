//! End-to-end smoke tests: run the compiled `qvsec-cli` binary on the
//! checked-in spec files and validate its JSON output.

use std::process::Command;

fn repo_root() -> std::path::PathBuf {
    // crates/cli -> crates -> repo root
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root exists")
        .to_path_buf()
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_qvsec-cli"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("qvsec-cli runs")
}

fn check_table1_reports(stdout: &[u8]) {
    let text = std::str::from_utf8(stdout).expect("UTF-8 output");
    let value = serde_json::parse(text).expect("stdout is valid JSON");
    let reports = value.as_array().expect("a JSON array of reports");
    assert_eq!(reports.len(), 4);
    let by_name = |name: &str| {
        reports
            .iter()
            .find(|r| r.field("name").as_str() == Some(name))
            .unwrap_or_else(|| panic!("report `{name}` present"))
    };
    // The paper's verdicts: rows 1-3 are insecure (total/partial/minute),
    // row 4 is perfectly secure.
    assert_eq!(by_name("row1-total").field("class").as_str(), Some("Total"));
    assert_eq!(
        by_name("row2-partial-collusion").field("class").as_str(),
        Some("Partial")
    );
    assert_eq!(
        by_name("row3-minute").field("class").as_str(),
        Some("Minute")
    );
    let row4 = by_name("row4-secure");
    assert_eq!(row4.field("class").as_str(), Some("NoDisclosure"));
    assert_eq!(row4.field("secure"), &serde_json::Value::Bool(true));
}

#[test]
fn audits_the_json_table1_spec() {
    let out = run_cli(&["audit", "--spec", "specs/table1.json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    check_table1_reports(&out.stdout);
}

#[test]
fn audits_the_toml_table1_spec_identically() {
    let json = run_cli(&["audit", "--spec", "specs/table1.json"]);
    let toml = run_cli(&["audit", "--spec", "specs/table1.toml"]);
    assert!(json.status.success() && toml.status.success());
    assert_eq!(json.stdout, toml.stdout, "formats must agree");
    let pretty = run_cli(&["audit", "--spec", "specs/table1.toml", "--pretty"]);
    assert!(pretty.status.success());
    check_table1_reports(&pretty.stdout);
}

#[test]
fn sequential_flag_changes_nothing() {
    let par = run_cli(&["audit", "--spec", "specs/table1.json"]);
    let seq = run_cli(&["audit", "--spec", "specs/table1.json", "--sequential"]);
    assert_eq!(par.stdout, seq.stdout);
}

#[test]
fn bad_invocations_fail_with_diagnostics() {
    let out = run_cli(&["audit"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spec"));
    let out = run_cli(&["audit", "--spec", "/nonexistent/spec.json"]);
    assert!(!out.status.success());
    let out = run_cli(&["frobnicate"]);
    assert!(!out.status.success());
    let out = run_cli(&[
        "session",
        "--spec",
        "specs/session_collusion.json",
        "--sequential",
    ]);
    assert!(!out.status.success(), "--sequential is audit-only");
}

#[test]
fn serves_the_committed_request_script_deterministically() {
    // One full server lifecycle per run: spawn `serve` on an ephemeral
    // port (`:0` — a fixed port would collide with concurrent checkouts or
    // a developer's own server), read the bound address from the stderr
    // announcement, drive the committed two-tenant script with `request`,
    // shut it down, and repeat. Two runs must produce byte-identical
    // response streams, and the small committed cache budget must show
    // evictions in the final stats.
    use std::io::BufRead;

    let run_once = || -> Vec<u8> {
        let mut server = Command::new(env!("CARGO_BIN_EXE_qvsec-cli"))
            .args([
                "serve",
                "--spec",
                "specs/serve_employee.json",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ])
            .current_dir(repo_root())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("server spawns");
        // The bind announcement carries the ephemeral port.
        let stderr = server.stderr.take().expect("stderr piped");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let first = lines.next().expect("server announces").expect("readable");
        let addr = first
            .strip_prefix("qvsec-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {first}"))
            .trim()
            .to_string();

        let out = run_cli(&[
            "request",
            "--addr",
            &addr,
            "--file",
            "specs/serve_requests.ndjson",
        ]);
        assert!(
            out.status.success(),
            "request failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Shut the server down over the wire and reap it.
        let bye = Command::new(env!("CARGO_BIN_EXE_qvsec-cli"))
            .args(["request", "--addr", &addr])
            .current_dir(repo_root())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("shutdown client spawns");
        use std::io::Write;
        bye.stdin
            .as_ref()
            .expect("stdin piped")
            .write_all(b"{\"op\": \"shutdown\"}\n")
            .expect("shutdown request sent");
        assert!(bye
            .wait_with_output()
            .expect("client exits")
            .status
            .success());
        assert!(server.wait().expect("server exits").success());
        out.stdout
    };

    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "two server lifecycles must agree byte-for-byte"
    );

    let text = std::str::from_utf8(&first).expect("UTF-8 output");
    let responses: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::parse(l).expect("each response line is JSON"))
        .collect();
    assert_eq!(responses.len(), 9, "one response per request line");
    for r in &responses {
        assert_eq!(r.field("ok"), &serde_json::Value::Bool(true), "{r:?}");
    }
    // Both tenants' first publishes are insecure (Bob/Carol collusion).
    for i in [1usize, 2] {
        assert_eq!(
            responses[i].field("report").field("report").field("secure"),
            &serde_json::Value::Bool(false)
        );
    }
    // The committed spec's byte budget is deliberately tiny, so this run
    // demonstrates eviction (not warmth — the unbounded warm path is
    // pinned down by the registry and bench tests): evictions and evicted
    // bytes must show in the final stats, and both tenants are accounted.
    let stats = responses[8].field("stats");
    assert_eq!(stats.field("tenants").as_array().unwrap().len(), 2);
    assert!(
        stats
            .field("engine_cache")
            .field("evictions")
            .as_int()
            .unwrap()
            > 0,
        "4 KiB budget must evict: {stats:?}"
    );
    let alice = &stats.field("tenants").as_array().unwrap()[0];
    assert_eq!(alice.field("tenant").as_str(), Some("alice"));
    assert!(alice.field("approx_bytes").as_int().unwrap() > 0);
}

#[test]
fn replays_the_committed_session_script() {
    let out = run_cli(&["session", "--spec", "specs/session_collusion.json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::str::from_utf8(&out.stdout).expect("UTF-8 output");
    let value = serde_json::parse(text).expect("stdout is valid JSON");
    let entries = value.as_array().expect("a JSON array of step entries");
    assert_eq!(entries.len(), 6, "one entry per script step");

    // Steps 1-2: publishes; both insecure (the Bob/Carol collusion).
    for (i, name) in [(0usize, "bob"), (1, "carol")] {
        let e = &entries[i];
        assert_eq!(e.field("view").as_str(), Some(name));
        assert_eq!(e.field("committed"), &serde_json::Value::Bool(true));
        assert_eq!(
            e.field("report").field("secure"),
            &serde_json::Value::Bool(false)
        );
    }
    // Warm steps serve compiled artifacts from cache.
    let carol_cache = entries[1].field("cache");
    assert!(carol_cache.field("crit_cache_hits").as_int().unwrap() > 0);
    assert!(carol_cache.field("compile_cache_hits").as_int().unwrap() > 0);

    // Snapshot / candidate / restore / replayed publish.
    assert_eq!(entries[2].field("snapshot").as_str(), Some("pre-dana"));
    assert_eq!(
        entries[3].field("committed"),
        &serde_json::Value::Bool(false),
        "candidate step does not commit"
    );
    assert_eq!(entries[4].field("restored").as_str(), Some("pre-dana"));
    let dana = &entries[5];
    assert_eq!(dana.field("view").as_str(), Some("dana"));
    assert_eq!(
        dana.field("cache").field("crit_cache_misses").as_int(),
        Some(0),
        "replaying after the what-if is served entirely from the memo"
    );
    // The candidate and the committed replay audit the same prefix: their
    // cumulative reports agree.
    assert_eq!(
        serde_json::to_string(entries[3].field("report")).unwrap(),
        serde_json::to_string(dana.field("report")).unwrap()
    );

    // Deterministic: replaying the script reproduces the bytes.
    let again = run_cli(&["session", "--spec", "specs/session_collusion.json"]);
    assert_eq!(out.stdout, again.stdout);
}
