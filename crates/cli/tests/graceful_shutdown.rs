//! Graceful-drain end-to-end test: SIGTERM mid-script must deliver every
//! in-flight response, flush the store journal, and exit 0 — and a
//! restart over the same store must answer the rest of the script
//! byte-identically to a server that was never interrupted.
//!
//! Unix-only: the drain path under test is the CLI's signal handler.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn repo_root() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root exists")
        .to_path_buf()
}

/// A scratch store directory, distinct per test process and label.
fn scratch_store(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qvsec-graceful-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `qvsec-cli serve` over the persistence spec with `store`
/// overriding the spec's store path; returns the child, its bound address
/// and the live stderr reader (dropping it would close the pipe under the
/// server's own announcements).
fn spawn_server(store: &Path) -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut server = Command::new(env!("CARGO_BIN_EXE_qvsec-cli"))
        .args([
            "serve",
            "--spec",
            "specs/serve_persist.json",
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().expect("UTF-8 temp path"),
        ])
        .current_dir(repo_root())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let stderr = server.stderr.take().expect("stderr piped");
    let mut announcements = BufReader::new(stderr);
    let mut first = String::new();
    announcements
        .read_line(&mut first)
        .expect("server announces");
    let addr = first
        .strip_prefix("qvsec-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {first}"))
        .trim()
        .to_string();
    (server, addr, announcements)
}

/// The committed request script minus the trailing `stats` line (server
/// counters are process-local, so a restarted server's stats legitimately
/// differ).
fn script() -> Vec<String> {
    let text = std::fs::read_to_string(repo_root().join("specs/serve_requests.ndjson"))
        .expect("committed script");
    let lines: Vec<String> = text.lines().map(String::from).collect();
    assert!(lines.last().expect("non-empty").contains("stats"));
    lines[..lines.len() - 1].to_vec()
}

/// Sends `lines` one at a time over an open connection, returning one
/// response per line.
fn drive(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    lines: &[String],
) -> Vec<String> {
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes()).expect("request written");
        writer.write_all(b"\n").expect("request written");
        let mut response = String::new();
        assert!(
            reader.read_line(&mut response).expect("response read") > 0,
            "server closed before answering: {line}"
        );
        responses.push(response.trim_end().to_string());
    }
    responses
}

/// Requests shutdown and reads the acknowledgement before closing — an
/// unread close can reset the connection out from under the server.
fn shutdown(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    writer
        .write_all(b"{\"op\": \"shutdown\"}\n")
        .expect("shutdown written");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("shutdown acknowledged");
    assert!(ack.contains("\"shutdown\":true"), "unexpected ack: {ack}");
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

#[test]
fn sigterm_mid_script_drains_flushes_and_restart_resumes_byte_identically() {
    let lines = script();
    assert_eq!(lines.len(), 8);

    // Reference: one uninterrupted server answers the whole script.
    let ref_store = scratch_store("reference");
    let (mut ref_server, ref_addr, _ref_stderr) = spawn_server(&ref_store);
    let (mut w, mut r) = connect(&ref_addr);
    let reference = drive(&mut w, &mut r, &lines);
    shutdown(&mut w, &mut r);
    assert!(ref_server.wait().expect("reference exits").success());

    // Interrupted: answer the first four requests, then SIGTERM while the
    // fifth is in flight.
    let cut_store = scratch_store("interrupted");
    let (mut cut_server, cut_addr, _cut_stderr) = spawn_server(&cut_store);
    let (mut w, mut r) = connect(&cut_addr);
    let mut before = drive(&mut w, &mut r, &lines[..4]);
    w.write_all(lines[4].as_bytes()).expect("request written");
    w.write_all(b"\n").expect("request written");
    let pid = cut_server.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs")
        .success());
    // The in-flight request still gets its response, post-signal.
    let mut fifth = String::new();
    assert!(
        r.read_line(&mut fifth).expect("drained response") > 0,
        "SIGTERM dropped the in-flight response"
    );
    before.push(fifth.trim_end().to_string());
    // Then the server winds the connection down: a structured
    // `connection_closing` notice (or a plain close, if the drain window
    // raced our read) and EOF.
    let mut tail = String::new();
    while r.read_line(&mut tail).expect("connection drains") > 0 {
        assert!(
            qvsec_serve::is_notice(tail.trim_end()),
            "unexpected post-drain line: {tail}"
        );
        assert!(tail.contains("shutting_down"), "wrong notice: {tail}");
        tail.clear();
    }
    drop((w, r));
    // Graceful exit: status 0, not a signal death.
    assert!(
        cut_server.wait().expect("interrupted exits").success(),
        "SIGTERM must drain and exit 0"
    );
    assert_eq!(before, reference[..5], "pre-signal responses diverged");

    // Restart over the flushed store: the journal must rehydrate enough
    // state to answer the remainder byte-identically.
    let (mut resumed_server, resumed_addr, _resumed_stderr) = spawn_server(&cut_store);
    let (mut w, mut r) = connect(&resumed_addr);
    let after = drive(&mut w, &mut r, &lines[5..]);
    shutdown(&mut w, &mut r);
    assert!(resumed_server.wait().expect("resumed exits").success());
    assert_eq!(
        after,
        reference[5..],
        "post-restart responses diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&ref_store);
    let _ = std::fs::remove_dir_all(&cut_store);
}
