//! `qvsec-cli` — audit secrets against views from the command line.
//!
//! ```text
//! qvsec-cli audit --spec specs/table1.json [--pretty] [--sequential]
//! qvsec-cli audit --spec specs/table1.toml --out reports.json
//! qvsec-cli session --spec specs/session_collusion.json [--pretty]
//! ```
//!
//! `audit` runs stateless audits; `session` replays a script of incremental
//! publish steps through an `AuditSession` (§6 collusion flow), emitting one
//! step report — verdict, marginal leakage, cache-reuse counters — per
//! step. Both spec formats are documented in the `qvsec_cli` library docs
//! and `crates/cli/README.md`; output is a JSON array on stdout (or
//! `--out`).

use std::process::ExitCode;

const USAGE: &str = "\
qvsec-cli — query-view security audits (Miklau & Suciu, SIGMOD 2004)

USAGE:
    qvsec-cli audit --spec <FILE> [OPTIONS]
    qvsec-cli session --spec <FILE> [OPTIONS]

COMMANDS:
    audit            Run the spec's stateless audits (parallel by default)
    session          Replay a session script of incremental publish steps

OPTIONS:
    --spec <FILE>    Spec, JSON or TOML (format auto-detected)
    --out <FILE>     Write the JSON reports to FILE instead of stdout
    --pretty         Pretty-print the JSON output
    --sequential     (audit) one request at a time instead of in parallel
    -h, --help       Show this help
";

enum Command {
    Audit,
    Session,
}

struct Args {
    command: Command,
    spec: String,
    out: Option<String>,
    pretty: bool,
    sequential: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = match argv.next().as_deref() {
        Some("audit") => Command::Audit,
        Some("session") => Command::Session,
        Some("-h") | Some("--help") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown command `{other}`")),
    };
    let mut spec = None;
    let mut out = None;
    let mut pretty = false;
    let mut sequential = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--spec" => spec = Some(argv.next().ok_or("--spec needs a file argument")?),
            "--out" => out = Some(argv.next().ok_or("--out needs a file argument")?),
            "--pretty" => pretty = true,
            "--sequential" => sequential = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if sequential && matches!(command, Command::Session) {
        return Err(
            "--sequential only applies to `audit` (sessions are inherently ordered)".into(),
        );
    }
    Ok(Args {
        command,
        spec: spec.ok_or("missing required --spec <FILE>")?,
        out,
        pretty,
        sequential,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.spec) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read spec `{}`: {e}", args.spec);
            return ExitCode::FAILURE;
        }
    };
    let run = match args.command {
        Command::Audit => qvsec_cli::run_spec(&text, args.sequential),
        Command::Session => qvsec_cli::run_session_spec(&text),
    };
    let reports = match run {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if args.pretty {
        serde_json::to_string_pretty(&reports)
    } else {
        serde_json::to_string(&reports)
    }
    .expect("JSON rendering is infallible");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered + "\n") {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            // Tolerate a closed pipe (`qvsec-cli ... | head`) instead of
            // panicking in the println! machinery.
            use std::io::Write;
            let mut stdout = std::io::stdout();
            let _ = stdout
                .write_all(rendered.as_bytes())
                .and_then(|_| stdout.write_all(b"\n"));
        }
    }
    ExitCode::SUCCESS
}
