//! `qvsec-cli` — audit secrets against views from the command line.
//!
//! ```text
//! qvsec-cli audit --spec specs/table1.json [--pretty] [--sequential]
//! qvsec-cli audit --spec specs/table1.toml --out reports.json
//! qvsec-cli session --spec specs/session_collusion.json [--pretty]
//! qvsec-cli serve --spec specs/serve_employee.json --addr 127.0.0.1:7341 [--workers 4] [--store DIR]
//! qvsec-cli request --addr 127.0.0.1:7341 --file specs/serve_requests.ndjson
//! qvsec-cli sql --spec specs/table1.json --query "SELECT name FROM Employee WHERE department = 'HR'"
//! qvsec-cli sql --addr 127.0.0.1:7341 --query "SHOW TABLES"
//! ```
//!
//! `audit` runs stateless audits; `session` replays a script of incremental
//! publish steps through an `AuditSession` (§6 collusion flow). `serve`
//! runs the multi-tenant NDJSON TCP server over a server spec, and
//! `request` drives a running server with one request per input line,
//! printing one response per line. `sql` analyzes one safe-SQL statement —
//! against a spec's schema locally, or over the wire via the server's
//! `sql` op — printing the compiled queries (datalog + canonical form) or
//! the structured rejection. Spec formats and the wire schema are
//! documented in the `qvsec_cli` library docs and `crates/cli/README.md`.

use std::process::ExitCode;

const USAGE: &str = "\
qvsec-cli — query-view security audits (Miklau & Suciu, SIGMOD 2004)

USAGE:
    qvsec-cli audit --spec <FILE> [OPTIONS]
    qvsec-cli session --spec <FILE> [--store <DIR>] [OPTIONS]
    qvsec-cli serve --spec <FILE> --addr <HOST:PORT> [--max-connections <N>] [--store <DIR>]
                    [--metrics-addr <HOST:PORT>] [--slow-ms <N>]
    qvsec-cli request --addr <HOST:PORT> [--file <FILE>] [--out <FILE>]
                      [--pipeline | --connections <N>]
    qvsec-cli sql (--spec <FILE> | --addr <HOST:PORT>) --query <SQL>
                  [--name <NAME>] [OPTIONS]
    qvsec-cli top --addr <HOST:PORT> [--out <FILE>]

COMMANDS:
    audit            Run the spec's stateless audits (parallel by default)
    session          Replay a session script of incremental publish steps
    serve            Run the multi-tenant NDJSON session server
    request          Send NDJSON requests (from --file or stdin) to a server
    sql              Compile one safe-SQL statement (SELECT or SHOW) to
                     canonical conjunctive queries — against a spec's
                     schema locally, or a running server's via its `sql` op
    top              Fetch a running server's unified metrics snapshot (the
                     `metrics` op) and print a ranked, human-readable view

OPTIONS:
    --spec <FILE>    Spec, JSON or TOML (format auto-detected)
    --query <SQL>    (sql) the statement to analyze
    --name <NAME>    (sql) name for the compiled query (default Q)
    --addr <ADDR>    Server address, e.g. 127.0.0.1:7341
    --max-connections <N>
                     (serve) accept-gate cap on concurrent connections
                     (overrides the spec's `server.max_connections`;
                     `--workers` is a deprecated alias)
    --store <DIR>    (serve/session) durable log store at DIR: tenants and
                     compiled artifacts persist and rehydrate on restart
                     (overrides the spec's `store` block)
    --metrics-addr <ADDR>
                     (serve) also serve Prometheus text metrics over HTTP
                     at ADDR (GET, any path)
    --slow-ms <N>    (serve) log requests slower than N ms as NDJSON lines
                     on stderr, with their span stage breakdown; implies
                     span tracing (overrides the spec's `server.slow_ms`)
    --file <FILE>    (request) NDJSON request script (default: stdin)
    --pipeline       (request) write every request before reading any
                     response (responses still arrive in request order)
    --connections <N>
                     (request) open N concurrent keep-alive connections,
                     each replaying the script with `{conn}` replaced by
                     its connection index; print a latency/throughput
                     summary instead of the responses
    --out <FILE>     Write the output to FILE instead of stdout
    --pretty         Pretty-print the JSON output (audit/session)
    --sequential     (audit) one request at a time instead of in parallel
    -h, --help       Show this help

On Unix, `serve` drains gracefully on SIGTERM/SIGINT: accepting stops,
in-flight requests still get their responses, the store journal is
flushed, and the process exits 0.
";

enum Command {
    Audit,
    Session,
    Serve,
    Request,
    Sql,
    Top,
}

struct Args {
    command: Command,
    spec: Option<String>,
    addr: Option<String>,
    max_connections: Option<usize>,
    connections: Option<usize>,
    pipeline: bool,
    file: Option<String>,
    out: Option<String>,
    store: Option<String>,
    query: Option<String>,
    name: Option<String>,
    metrics_addr: Option<String>,
    slow_ms: Option<u64>,
    pretty: bool,
    sequential: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = match argv.next().as_deref() {
        Some("audit") => Command::Audit,
        Some("session") => Command::Session,
        Some("serve") => Command::Serve,
        Some("request") => Command::Request,
        Some("sql") => Command::Sql,
        Some("top") => Command::Top,
        Some("-h") | Some("--help") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown command `{other}`")),
    };
    let mut args = Args {
        command,
        spec: None,
        addr: None,
        max_connections: None,
        connections: None,
        pipeline: false,
        file: None,
        out: None,
        store: None,
        query: None,
        name: None,
        metrics_addr: None,
        slow_ms: None,
        pretty: false,
        sequential: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--spec" => args.spec = Some(argv.next().ok_or("--spec needs a file argument")?),
            "--addr" => args.addr = Some(argv.next().ok_or("--addr needs an address argument")?),
            // `--workers` predates the pipelined server (one thread per
            // connection now; no fixed pool) and stays as an alias.
            "--max-connections" | "--workers" => {
                args.max_connections = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-connections needs a positive integer")?,
                )
            }
            "--connections" => {
                args.connections = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or("--connections needs a positive integer")?,
                )
            }
            "--pipeline" => args.pipeline = true,
            "--file" => args.file = Some(argv.next().ok_or("--file needs a file argument")?),
            "--out" => args.out = Some(argv.next().ok_or("--out needs a file argument")?),
            "--store" => {
                args.store = Some(argv.next().ok_or("--store needs a directory argument")?)
            }
            "--query" => {
                args.query = Some(
                    argv.next()
                        .ok_or("--query needs a SQL statement argument")?,
                )
            }
            "--name" => args.name = Some(argv.next().ok_or("--name needs a name argument")?),
            "--metrics-addr" => {
                args.metrics_addr = Some(
                    argv.next()
                        .ok_or("--metrics-addr needs an address argument")?,
                )
            }
            "--slow-ms" => {
                args.slow_ms = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--slow-ms needs a non-negative integer")?,
                )
            }
            "--pretty" => args.pretty = true,
            "--sequential" => args.sequential = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.store.is_some()
        && matches!(
            args.command,
            Command::Audit | Command::Request | Command::Sql
        )
    {
        return Err("--store only applies to `serve` and `session`".into());
    }
    if (args.query.is_some() || args.name.is_some()) && !matches!(args.command, Command::Sql) {
        return Err("--query and --name only apply to `sql`".into());
    }
    if (args.connections.is_some() || args.pipeline) && !matches!(args.command, Command::Request) {
        return Err("--connections and --pipeline only apply to `request`".into());
    }
    if args.connections.is_some() && args.pipeline {
        return Err(
            "--connections drives whole connections; it cannot combine with --pipeline".into(),
        );
    }
    if args.max_connections.is_some() && !matches!(args.command, Command::Serve) {
        return Err("--max-connections only applies to `serve`".into());
    }
    if (args.metrics_addr.is_some() || args.slow_ms.is_some())
        && !matches!(args.command, Command::Serve)
    {
        return Err("--metrics-addr and --slow-ms only apply to `serve`".into());
    }
    match args.command {
        Command::Audit | Command::Session => {
            if args.spec.is_none() {
                return Err("missing required --spec <FILE>".into());
            }
            if args.sequential && matches!(args.command, Command::Session) {
                return Err(
                    "--sequential only applies to `audit` (sessions are inherently ordered)".into(),
                );
            }
        }
        Command::Serve => {
            if args.spec.is_none() || args.addr.is_none() {
                return Err("`serve` needs --spec <FILE> and --addr <HOST:PORT>".into());
            }
        }
        Command::Request => {
            if args.addr.is_none() {
                return Err("`request` needs --addr <HOST:PORT>".into());
            }
        }
        Command::Top => {
            if args.addr.is_none() {
                return Err("`top` needs --addr <HOST:PORT>".into());
            }
        }
        Command::Sql => {
            if args.query.is_none() {
                return Err("`sql` needs --query <SQL>".into());
            }
            if args.spec.is_some() == args.addr.is_some() {
                return Err(
                    "`sql` needs exactly one of --spec <FILE> (local schema) or --addr <HOST:PORT> (ask a server)"
                        .into(),
                );
            }
        }
    }
    Ok(args)
}

fn read_spec(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read spec `{path}`: {e}");
        ExitCode::FAILURE
    })
}

/// Writes `text` (newline-terminated) to `--out` or stdout, tolerating a
/// closed pipe (`qvsec-cli ... | head`) instead of panicking.
fn emit(out: &Option<String>, text: String) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout();
            let _ = stdout
                .write_all(text.as_bytes())
                .and_then(|_| stdout.write_all(b"\n"));
            ExitCode::SUCCESS
        }
    }
}

/// SIGTERM/SIGINT → graceful drain, without a signal-handling dependency.
/// The raw handler only flips an atomic (the async-signal-safe subset); a
/// watcher thread polls the flag and calls `ServerHandle::shutdown`, which
/// stops the accept loop, drains in-flight requests and flushes the store
/// journal before `serve` exits 0.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn note_termination(_signum: i32) {
        TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn drain_on_termination(handle: qvsec_serve::ServerHandle) {
        unsafe {
            signal(SIGTERM, note_termination);
            signal(SIGINT, note_termination);
        }
        std::thread::spawn(move || loop {
            if TERMINATION_REQUESTED.load(Ordering::SeqCst) {
                eprintln!("qvsec-serve draining (termination signal)");
                handle.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
}

fn run_serve(args: &Args) -> ExitCode {
    let text = match read_spec(args.spec.as_deref().expect("validated")) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let mut spec = match qvsec_cli::parse_serve_spec(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.store {
        spec.store = Some(qvsec_store::StoreConfig::log_at(path.clone()));
    }
    let registry = match qvsec_cli::build_registry(&spec) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = args.addr.as_deref().expect("validated");
    let mut config = qvsec_cli::server_config(&spec, args.max_connections);
    if args.slow_ms.is_some() {
        config.slow_ms = args.slow_ms;
    }
    if config.slow_ms.is_some() {
        // The slow-query log needs the per-request stage breakdown, which
        // only exists with span tracing on, plus the op/tenant/canonical
        // notes, which wait for note capture. Neither changes response
        // bytes — they only start timing/context capture.
        qvsec_obs::set_tracing(true);
        qvsec_obs::set_note_capture(true);
    }
    let registry = std::sync::Arc::new(registry);
    let server =
        match qvsec_serve::Server::bind_with(std::sync::Arc::clone(&registry), addr, config) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("error: cannot bind `{addr}`: {e}");
                return ExitCode::FAILURE;
            }
        };
    match server.local_addr() {
        // Announced on stderr so request scripts piping stdout stay clean;
        // flushed line-wise, so `wait-for-line` style supervision works.
        Ok(bound) => eprintln!("qvsec-serve listening on {bound}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(metrics_addr) = &args.metrics_addr {
        match qvsec_serve::serve_metrics_http(metrics_addr.as_str(), registry, server.counters()) {
            Ok(bound) => eprintln!("qvsec-serve metrics on http://{bound}/metrics"),
            Err(e) => {
                eprintln!("error: cannot bind metrics address `{metrics_addr}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(unix)]
    match server.handle() {
        Ok(handle) => signals::drain_on_termination(handle),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("qvsec-serve shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_request(args: &Args) -> ExitCode {
    let input = match &args.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use std::io::Read;
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            text
        }
    };
    let lines: Vec<String> = input.lines().map(String::from).collect();
    let addr = args.addr.as_deref().expect("validated");
    if let Some(connections) = args.connections {
        return run_saturation(args, addr, &lines, connections);
    }
    let sent = if args.pipeline {
        qvsec_serve::request_lines_pipelined(addr, &lines)
    } else {
        qvsec_serve::request_lines(addr, &lines)
    };
    match sent {
        Ok(responses) => emit(&args.out, responses.join("\n")),
        Err(e) => {
            eprintln!("error: request to `{addr}` failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `request --connections N`: N concurrent keep-alive connections each
/// replay the script (with `{conn}` replaced by the connection index, so
/// tenants can be kept disjoint), and a one-line JSON summary with
/// throughput and latency percentiles replaces the raw responses.
fn run_saturation(args: &Args, addr: &str, template: &[String], connections: usize) -> ExitCode {
    let scripts: Vec<Vec<String>> = (0..connections)
        .map(|conn| {
            template
                .iter()
                .map(|line| line.replace("{conn}", &conn.to_string()))
                .collect()
        })
        .collect();
    let started = std::time::Instant::now();
    let outcome = qvsec_serve::drive_scripts(addr, &scripts);
    let elapsed = started.elapsed();
    let responses: usize = outcome.responses.iter().map(Vec::len).sum();
    let requests = template.len() * connections;
    let rps = responses as f64 / elapsed.as_secs_f64().max(1e-9);
    let mut sorted = outcome.latencies_nanos.clone();
    sorted.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[rank] / 1_000
    };
    let summary = format!(
        concat!(
            "{{\"connections\": {}, \"requests\": {}, \"responses\": {}, ",
            "\"dropped\": {}, \"elapsed_millis\": {}, \"rps\": {:.1}, ",
            "\"p50_micros\": {}, \"p99_micros\": {}}}"
        ),
        connections,
        requests,
        responses,
        outcome.dropped,
        elapsed.as_millis(),
        rps,
        percentile(0.50),
        percentile(0.99),
    );
    emit(&args.out, summary)
}

/// Renders a rejected statement's byte span as a caret underline on
/// stderr, rustc-style — the structured JSON on stdout stays byte-for-byte
/// what it always was; this is purely additive human context:
///
/// ```text
/// error: sql rejected: OR is outside the safe subset
///     SELECT name FROM Employee WHERE department = 'HR' OR phone = '5'
///                                                       ^^
/// ```
fn print_rejection_caret(sql: &str, body: &serde_json::Value) {
    let error = body.field("error");
    let span = error.field("detail").field("span");
    let (Some(start), Some(end)) = (span.field("start").as_int(), span.field("end").as_int())
    else {
        return;
    };
    let (start, end) = (start.max(0) as usize, end.max(0) as usize);
    let start = start.min(sql.len());
    let end = end.clamp(start, sql.len());
    if !sql.is_char_boundary(start) || !sql.is_char_boundary(end) {
        return;
    }
    if let Some(reason) = error.field("reason").as_str() {
        eprintln!("error: {reason}");
    }
    // Underline within the line holding the span's start.
    let line_start = sql[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = sql[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(sql.len());
    let pad = sql[line_start..start].chars().count();
    let width = sql[start..end.min(line_end)].chars().count().max(1);
    eprintln!("    {}", &sql[line_start..line_end]);
    eprintln!("    {}{}", " ".repeat(pad), "^".repeat(width));
}

/// `sql`: analyze one statement. With `--spec`, compile locally against the
/// spec's schema; with `--addr`, send the server a `{"op": "sql"}` request
/// and print its response. Either way the exit code reflects whether the
/// statement was accepted, and rejections are structured JSON on stdout —
/// plus a caret-underlined rendering of the offending span on stderr.
fn run_sql(args: &Args) -> ExitCode {
    let query = args.query.as_deref().expect("validated");
    let name = args.name.as_deref().unwrap_or("Q");
    if let Some(addr) = args.addr.as_deref() {
        let request = serde_json::to_string(&serde_json::Value::Object(vec![
            ("op".to_string(), serde_json::Value::Str("sql".to_string())),
            ("sql".to_string(), serde_json::Value::Str(query.to_string())),
            ("name".to_string(), serde_json::Value::Str(name.to_string())),
        ]))
        .expect("JSON rendering is infallible");
        return match qvsec_serve::request_lines(addr, &[request]) {
            Ok(responses) => {
                let parsed = responses
                    .first()
                    .and_then(|line| serde_json::parse(line).ok());
                let ok = parsed
                    .as_ref()
                    .map(|v| v.field("ok") == &serde_json::Value::Bool(true))
                    .unwrap_or(false);
                if !ok {
                    if let Some(body) = &parsed {
                        print_rejection_caret(query, body);
                    }
                }
                let code = emit(&args.out, responses.join("\n"));
                if ok {
                    code
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: request to `{addr}` failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let text = match read_spec(args.spec.as_deref().expect("validated")) {
        Ok(text) => text,
        Err(code) => return code,
    };
    match qvsec_cli::analyze_sql(&text, query, name) {
        Ok((body, accepted)) => {
            if !accepted {
                print_rejection_caret(query, &body);
            }
            let rendered = if args.pretty {
                serde_json::to_string_pretty(&body)
            } else {
                serde_json::to_string(&body)
            }
            .expect("JSON rendering is infallible");
            let code = emit(&args.out, rendered);
            if accepted {
                code
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Formats a nanosecond figure for the `top` view.
fn fmt_nanos(nanos: i128) -> String {
    match nanos {
        n if n < 1_000 => format!("{n}ns"),
        n if n < 1_000_000 => format!("{}µs", n / 1_000),
        n if n < 1_000_000_000 => format!("{}ms", n / 1_000_000),
        n => format!("{:.1}s", n as f64 / 1e9),
    }
}

/// `top`: one `{"op": "metrics"}` round trip, rendered as ranked sections
/// (counters and gauges by value, span histograms by observation count).
/// Zero-valued entries are elided — `top` answers "what is this server
/// actually doing", not "what could it count".
fn run_top(args: &Args) -> ExitCode {
    let addr = args.addr.as_deref().expect("validated");
    let response = match qvsec_serve::request_lines(addr, &[r#"{"op": "metrics"}"#.to_string()]) {
        Ok(responses) => match responses.first().and_then(|l| serde_json::parse(l).ok()) {
            Some(v) => v,
            None => {
                eprintln!("error: server at `{addr}` sent no parsable response");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: request to `{addr}` failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = response.field("metrics");
    if metrics.is_null() {
        eprintln!("error: unexpected response: {response:?}");
        return ExitCode::FAILURE;
    }
    let numbers = |section: &str| -> Vec<(String, i128)> {
        let mut entries = Vec::new();
        if let serde_json::Value::Object(pairs) = metrics.field(section) {
            for (name, value) in pairs {
                if let Some(n) = value.as_int() {
                    if n != 0 {
                        entries.push((name.clone(), n));
                    }
                }
            }
        }
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
    };
    let mut out = format!("qvsec metrics @ {addr}\n");
    for section in ["counters", "gauges"] {
        let entries = numbers(section);
        if entries.is_empty() {
            continue;
        }
        out.push_str(&format!("\n{section}\n"));
        for (name, value) in entries {
            out.push_str(&format!("  {name:<42} {value}\n"));
        }
    }
    if let serde_json::Value::Object(pairs) = metrics.field("histograms") {
        let mut rows: Vec<(String, i128, i128, i128)> = pairs
            .iter()
            .filter_map(|(name, h)| {
                let count = h.field("count").as_int()?;
                (count > 0).then(|| {
                    (
                        name.clone(),
                        count,
                        h.field("p50_nanos").as_int().unwrap_or(0),
                        h.field("p99_nanos").as_int().unwrap_or(0),
                    )
                })
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if !rows.is_empty() {
            out.push_str("\nspans (count / p50 / p99)\n");
            for (name, count, p50, p99) in rows {
                out.push_str(&format!(
                    "  {name:<42} {count:>8}  {:>8}  {:>8}\n",
                    fmt_nanos(p50),
                    fmt_nanos(p99)
                ));
            }
        }
    }
    emit(&args.out, out.trim_end().to_string())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command {
        Command::Serve => return run_serve(&args),
        Command::Request => return run_request(&args),
        Command::Sql => return run_sql(&args),
        Command::Top => return run_top(&args),
        Command::Audit | Command::Session => {}
    }
    let text = match read_spec(args.spec.as_deref().expect("validated")) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let run = match args.command {
        Command::Audit => qvsec_cli::run_spec(&text, args.sequential),
        Command::Session => {
            let store = args
                .store
                .as_ref()
                .map(|path| qvsec_store::StoreConfig::log_at(path.clone()));
            qvsec_cli::run_session_spec_with_store(&text, store.as_ref())
        }
        _ => unreachable!("serve/request handled above"),
    };
    let reports = match run {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if args.pretty {
        serde_json::to_string_pretty(&reports)
    } else {
        serde_json::to_string(&reports)
    }
    .expect("JSON rendering is infallible");
    emit(&args.out, rendered)
}
