//! `qvsec-cli` — audit secrets against views from the command line.
//!
//! ```text
//! qvsec-cli audit --spec specs/table1.json [--pretty] [--sequential]
//! qvsec-cli audit --spec specs/table1.toml --out reports.json
//! qvsec-cli session --spec specs/session_collusion.json [--pretty]
//! qvsec-cli serve --spec specs/serve_employee.json --addr 127.0.0.1:7341 [--workers 4] [--store DIR]
//! qvsec-cli request --addr 127.0.0.1:7341 --file specs/serve_requests.ndjson
//! ```
//!
//! `audit` runs stateless audits; `session` replays a script of incremental
//! publish steps through an `AuditSession` (§6 collusion flow). `serve`
//! runs the multi-tenant NDJSON TCP server over a server spec, and
//! `request` drives a running server with one request per input line,
//! printing one response per line. Spec formats and the wire schema are
//! documented in the `qvsec_cli` library docs and `crates/cli/README.md`.

use std::process::ExitCode;

const USAGE: &str = "\
qvsec-cli — query-view security audits (Miklau & Suciu, SIGMOD 2004)

USAGE:
    qvsec-cli audit --spec <FILE> [OPTIONS]
    qvsec-cli session --spec <FILE> [--store <DIR>] [OPTIONS]
    qvsec-cli serve --spec <FILE> --addr <HOST:PORT> [--workers <N>] [--store <DIR>]
    qvsec-cli request --addr <HOST:PORT> [--file <FILE>] [--out <FILE>]

COMMANDS:
    audit            Run the spec's stateless audits (parallel by default)
    session          Replay a session script of incremental publish steps
    serve            Run the multi-tenant NDJSON session server
    request          Send NDJSON requests (from --file or stdin) to a server

OPTIONS:
    --spec <FILE>    Spec, JSON or TOML (format auto-detected)
    --addr <ADDR>    Server address, e.g. 127.0.0.1:7341
    --workers <N>    (serve) connection worker threads (default 4)
    --store <DIR>    (serve/session) durable log store at DIR: tenants and
                     compiled artifacts persist and rehydrate on restart
                     (overrides the spec's `store` block)
    --file <FILE>    (request) NDJSON request script (default: stdin)
    --out <FILE>     Write the output to FILE instead of stdout
    --pretty         Pretty-print the JSON output (audit/session)
    --sequential     (audit) one request at a time instead of in parallel
    -h, --help       Show this help
";

enum Command {
    Audit,
    Session,
    Serve,
    Request,
}

struct Args {
    command: Command,
    spec: Option<String>,
    addr: Option<String>,
    workers: usize,
    file: Option<String>,
    out: Option<String>,
    store: Option<String>,
    pretty: bool,
    sequential: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = match argv.next().as_deref() {
        Some("audit") => Command::Audit,
        Some("session") => Command::Session,
        Some("serve") => Command::Serve,
        Some("request") => Command::Request,
        Some("-h") | Some("--help") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown command `{other}`")),
    };
    let mut args = Args {
        command,
        spec: None,
        addr: None,
        workers: 4,
        file: None,
        out: None,
        store: None,
        pretty: false,
        sequential: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--spec" => args.spec = Some(argv.next().ok_or("--spec needs a file argument")?),
            "--addr" => args.addr = Some(argv.next().ok_or("--addr needs an address argument")?),
            "--workers" => {
                args.workers = argv
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs a positive integer")?
            }
            "--file" => args.file = Some(argv.next().ok_or("--file needs a file argument")?),
            "--out" => args.out = Some(argv.next().ok_or("--out needs a file argument")?),
            "--store" => {
                args.store = Some(argv.next().ok_or("--store needs a directory argument")?)
            }
            "--pretty" => args.pretty = true,
            "--sequential" => args.sequential = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.store.is_some() && matches!(args.command, Command::Audit | Command::Request) {
        return Err("--store only applies to `serve` and `session`".into());
    }
    match args.command {
        Command::Audit | Command::Session => {
            if args.spec.is_none() {
                return Err("missing required --spec <FILE>".into());
            }
            if args.sequential && matches!(args.command, Command::Session) {
                return Err(
                    "--sequential only applies to `audit` (sessions are inherently ordered)".into(),
                );
            }
        }
        Command::Serve => {
            if args.spec.is_none() || args.addr.is_none() {
                return Err("`serve` needs --spec <FILE> and --addr <HOST:PORT>".into());
            }
        }
        Command::Request => {
            if args.addr.is_none() {
                return Err("`request` needs --addr <HOST:PORT>".into());
            }
        }
    }
    Ok(args)
}

fn read_spec(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read spec `{path}`: {e}");
        ExitCode::FAILURE
    })
}

/// Writes `text` (newline-terminated) to `--out` or stdout, tolerating a
/// closed pipe (`qvsec-cli ... | head`) instead of panicking.
fn emit(out: &Option<String>, text: String) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout();
            let _ = stdout
                .write_all(text.as_bytes())
                .and_then(|_| stdout.write_all(b"\n"));
            ExitCode::SUCCESS
        }
    }
}

fn run_serve(args: &Args) -> ExitCode {
    let text = match read_spec(args.spec.as_deref().expect("validated")) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let mut spec = match qvsec_cli::parse_serve_spec(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.store {
        spec.store = Some(qvsec_store::StoreConfig::log_at(path.clone()));
    }
    let registry = match qvsec_cli::build_registry(&spec) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = args.addr.as_deref().expect("validated");
    let server = match qvsec_serve::Server::bind(std::sync::Arc::new(registry), addr, args.workers)
    {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind `{addr}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // Announced on stderr so request scripts piping stdout stay clean;
        // flushed line-wise, so `wait-for-line` style supervision works.
        Ok(bound) => eprintln!("qvsec-serve listening on {bound}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("qvsec-serve shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_request(args: &Args) -> ExitCode {
    let input = match &args.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use std::io::Read;
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            text
        }
    };
    let lines: Vec<String> = input.lines().map(String::from).collect();
    let addr = args.addr.as_deref().expect("validated");
    match qvsec_serve::request_lines(addr, &lines) {
        Ok(responses) => emit(&args.out, responses.join("\n")),
        Err(e) => {
            eprintln!("error: request to `{addr}` failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command {
        Command::Serve => return run_serve(&args),
        Command::Request => return run_request(&args),
        Command::Audit | Command::Session => {}
    }
    let text = match read_spec(args.spec.as_deref().expect("validated")) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let run = match args.command {
        Command::Audit => qvsec_cli::run_spec(&text, args.sequential),
        Command::Session => {
            let store = args
                .store
                .as_ref()
                .map(|path| qvsec_store::StoreConfig::log_at(path.clone()));
            qvsec_cli::run_session_spec_with_store(&text, store.as_ref())
        }
        _ => unreachable!("serve/request handled above"),
    };
    let reports = match run {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if args.pretty {
        serde_json::to_string_pretty(&reports)
    } else {
        serde_json::to_string(&reports)
    }
    .expect("JSON rendering is infallible");
    emit(&args.out, rendered)
}
