//! Library behind the `qvsec-cli` binary: audit-spec parsing (JSON or a
//! TOML subset) and execution against an [`AuditEngine`].
//!
//! A spec declares a schema, optional domain constants, an optional
//! dictionary, engine defaults, and a list of audits:
//!
//! ```json
//! {
//!   "relations": [
//!     {"name": "Employee", "attributes": ["name", "department", "phone"]}
//!   ],
//!   "defaults": {"depth": "exact"},
//!   "audits": [
//!     {
//!       "name": "table1-row4",
//!       "secret": "S4(n) :- Employee(n, 'HR', p)",
//!       "views": ["V4(n) :- Employee(n, 'Mgmt', p)"]
//!     }
//!   ]
//! }
//! ```
//!
//! Queries are written in the workspace's datalog syntax and parsed with
//! [`qvsec_cq::parse_query`] — or, anywhere a query string is accepted, in
//! the safe-SQL subset of `qvsec-sql` via the object form
//! `{"sql": "SELECT name FROM Employee WHERE department = 'HR'", "name": "S4"}`
//! (`name` is optional; see [`QuerySpec`]). Both spellings compile to the
//! same canonical conjunctive queries, so reports are byte-identical
//! across them. The equivalent TOML form uses `[[relations]]` and
//! `[[audits]]` array-of-table sections.

pub mod toml_subset;

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::QvsError;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema};
use serde::Deserialize;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// The spec file could not be parsed.
    Spec(String),
    /// A query inside the spec failed to parse or analyze.
    Audit(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Spec(m) => write!(f, "spec error: {m}"),
            CliError::Audit(m) => write!(f, "audit error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Spec(e.to_string())
    }
}

impl From<QvsError> for CliError {
    fn from(e: QvsError) -> Self {
        CliError::Audit(e.to_string())
    }
}

/// One relation declaration.
#[derive(Debug, Clone, Deserialize)]
pub struct RelationSpec {
    /// Relation name.
    pub name: String,
    /// Attribute names.
    pub attributes: Vec<String>,
}

/// Spec-level defaults applied to every audit unless overridden.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct DefaultsSpec {
    /// Default escalation depth (`"fast"`, `"exact"`, `"probabilistic"`).
    pub depth: Option<String>,
    /// Default minute-vs-partial threshold as `[numerator, denominator]`.
    pub minute_threshold: Option<(i128, i128)>,
    /// Default candidate-enumeration cap.
    pub candidate_cap: Option<usize>,
}

/// Dictionary construction directive: a uniform distribution over the
/// support space of every query in the spec.
#[derive(Debug, Clone, Deserialize)]
pub struct DictionarySpec {
    /// Uniform per-tuple probability as `[numerator, denominator]`
    /// (default `[1, 2]`).
    pub probability: Option<(i128, i128)>,
    /// Cap on the constructed tuple-space size (default 4096).
    pub cap: Option<usize>,
    /// Largest tuple-space size the probabilistic stage evaluates exactly;
    /// bigger spaces cut over to Monte-Carlo estimation (default 24).
    pub exact_cutover: Option<usize>,
    /// Worlds drawn into the shared Monte-Carlo sample pool (default 8192).
    pub samples: Option<usize>,
    /// Seed of the shared sample pool; fixing it makes Monte-Carlo reports
    /// byte-reproducible.
    pub seed: Option<u64>,
    /// Cap on the reported leak-entry and independence-violation lists
    /// (verdicts, max leak and the witness pair always cover every answer
    /// pair; unset reports everything).
    pub report_cap: Option<usize>,
}

/// A query inside a spec, in either front-end syntax. Deserializes from a
/// plain JSON string (datalog, the historical form) or from an object
/// `{"sql": "SELECT ...", "name": "Q"}` (safe SQL; `name` labels the
/// compiled query and is optional). Both compile to the same canonical
/// conjunctive queries, so swapping one spelling for the other leaves
/// every report byte-identical.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// Datalog syntax, e.g. `"V(n, d) :- Employee(n, d, p)"`.
    Datalog(String),
    /// Safe-SQL syntax, compiled through `qvsec-sql`.
    Sql {
        /// The SQL text.
        sql: String,
        /// Name for the compiled query; defaults per context (`S` for
        /// secrets, `V` for views).
        name: Option<String>,
    },
}

impl serde::Deserialize for QuerySpec {
    fn deserialize(value: &serde::json::Json) -> Result<Self, serde::Error> {
        use serde::json::Json;
        match value {
            Json::Str(text) => Ok(QuerySpec::Datalog(text.clone())),
            Json::Object(_) => {
                let sql = value
                    .field("sql")
                    .as_str()
                    .ok_or_else(|| {
                        serde::Error::custom("query object form needs a string `sql` field")
                    })?
                    .to_string();
                let name = match value.field("name") {
                    Json::Null => None,
                    other => Some(
                        other
                            .as_str()
                            .ok_or_else(|| serde::Error::custom("query `name` must be a string"))?
                            .to_string(),
                    ),
                };
                Ok(QuerySpec::Sql { sql, name })
            }
            _ => Err(serde::Error::custom(
                "expected a datalog string or a {\"sql\": ...} object",
            )),
        }
    }
}

impl QuerySpec {
    /// The raw query text, for error messages.
    pub fn text(&self) -> &str {
        match self {
            QuerySpec::Datalog(text) => text,
            QuerySpec::Sql { sql, .. } => sql,
        }
    }

    /// Compiles to exactly one conjunctive query (SQL `IN` lists that
    /// expand to a union are rejected here).
    pub fn compile_single(
        &self,
        schema: &Schema,
        domain: &mut Domain,
        default_name: &str,
    ) -> Result<ConjunctiveQuery, String> {
        match self {
            QuerySpec::Datalog(text) => {
                parse_query(text, schema, domain).map_err(|e| format!("{e}"))
            }
            QuerySpec::Sql { sql, name } => qvsec_sql::compile_query_single(
                sql,
                schema,
                domain,
                name.as_deref().unwrap_or(default_name),
            )
            .map_err(|e| format!("sql rejected: {e}")),
        }
    }

    /// Compiles to one or more conjunctive queries: a SQL `IN` list
    /// expands to one query per (consistent) combination, suffixed
    /// `_1`, `_2`, ...; datalog always yields exactly one.
    pub fn compile_multi(
        &self,
        schema: &Schema,
        domain: &mut Domain,
        default_name: &str,
    ) -> Result<Vec<ConjunctiveQuery>, String> {
        match self {
            QuerySpec::Datalog(text) => parse_query(text, schema, domain)
                .map(|q| vec![q])
                .map_err(|e| format!("{e}")),
            QuerySpec::Sql { sql, name } => qvsec_sql::compile_query(
                sql,
                schema,
                domain,
                name.as_deref().unwrap_or(default_name),
            )
            .map_err(|e| format!("sql rejected: {e}")),
        }
    }
}

/// One audit case.
#[derive(Debug, Clone, Deserialize)]
pub struct AuditCaseSpec {
    /// Label for the report (defaults to the secret query's name).
    pub name: Option<String>,
    /// The secret query, datalog or safe-SQL syntax.
    pub secret: QuerySpec,
    /// The views about to be published, datalog or safe-SQL syntax (a SQL
    /// view with an `IN` list contributes every expanded disjunct).
    pub views: Vec<QuerySpec>,
    /// Per-audit depth override.
    pub depth: Option<String>,
    /// Per-audit minute threshold override.
    pub minute_threshold: Option<(i128, i128)>,
}

/// A full audit specification.
#[derive(Debug, Clone, Deserialize)]
pub struct AuditSpec {
    /// The schema's relations.
    pub relations: Vec<RelationSpec>,
    /// Domain constants interned before query parsing (query constants are
    /// added on demand).
    pub constants: Option<Vec<String>>,
    /// Dictionary directive; required for `"probabilistic"` depth.
    pub dictionary: Option<DictionarySpec>,
    /// Engine defaults.
    pub defaults: Option<DefaultsSpec>,
    /// The audits to run.
    pub audits: Vec<AuditCaseSpec>,
}

fn parse_depth(text: &str) -> Result<AuditDepth, CliError> {
    match text.to_ascii_lowercase().as_str() {
        "fast" => Ok(AuditDepth::Fast),
        "exact" => Ok(AuditDepth::Exact),
        "probabilistic" | "prob" => Ok(AuditDepth::Probabilistic),
        other => Err(CliError::Spec(format!(
            "unknown depth `{other}` (expected fast | exact | probabilistic)"
        ))),
    }
}

/// Detects the spec format and parses it. JSON when the first
/// non-whitespace byte is `{`, the TOML subset otherwise.
pub fn parse_spec(text: &str) -> Result<AuditSpec, CliError> {
    let value = if text.trim_start().starts_with('{') {
        serde_json::parse(text)?
    } else {
        toml_subset::parse(text).map_err(CliError::Spec)?
    };
    Ok(serde_json::from_value(&value)?)
}

/// Everything built from a spec: the engine and the parsed requests.
pub struct PreparedAudit {
    /// The engine, bound to the spec's schema/domain/dictionary.
    pub engine: AuditEngine,
    /// The parsed audit requests, in spec order.
    pub requests: Vec<AuditRequest>,
}

/// Builds the schema and initial domain a spec declares.
fn build_schema_domain(
    relations: &[RelationSpec],
    constants: &Option<Vec<String>>,
) -> Result<(Schema, Domain), CliError> {
    let mut schema = Schema::new();
    for rel in relations {
        let attrs: Vec<&str> = rel.attributes.iter().map(String::as_str).collect();
        schema
            .try_add_relation(&rel.name, &attrs)
            .map_err(|e| CliError::Spec(e.to_string()))?;
    }
    let domain = match constants {
        Some(constants) => Domain::with_constants(constants),
        None => Domain::new(),
    };
    Ok((schema, domain))
}

/// Opens the durable store a spec (or `--store` flag) selects.
fn open_spec_store(
    config: &qvsec_store::StoreConfig,
) -> Result<std::sync::Arc<dyn qvsec_store::StoreBackend>, CliError> {
    qvsec_store::open_store(config).map_err(|e| CliError::Spec(format!("store: {e}")))
}

/// Builds an engine bound to `schema`/`domain` with the spec's defaults and
/// (when declared) a uniform dictionary over the support space of
/// `queries`. With a `store`, compiled artifacts write through to it.
fn build_engine(
    schema: Schema,
    domain: &Domain,
    defaults: &DefaultsSpec,
    dictionary: &Option<DictionarySpec>,
    queries: &[&ConjunctiveQuery],
    store: Option<std::sync::Arc<dyn qvsec_store::StoreBackend>>,
) -> Result<AuditEngine, CliError> {
    let mut builder = AuditEngine::builder(schema, domain.clone());
    if let Some(store) = store {
        builder = builder.store(store);
    }
    if let Some(depth) = &defaults.depth {
        builder = builder.default_depth(parse_depth(depth)?);
    }
    if let Some((n, d)) = defaults.minute_threshold {
        builder = builder.minute_threshold(Ratio::new(n, d));
    }
    if let Some(cap) = defaults.candidate_cap {
        builder = builder.candidate_cap(cap);
    }
    if let Some(dict_spec) = dictionary {
        let (n, d) = dict_spec.probability.unwrap_or((1, 2));
        let cap = dict_spec.cap.unwrap_or(4096);
        let space = qvsec_prob::lineage::support_space(queries, domain, cap)
            .map_err(|e| CliError::Spec(format!("dictionary support space: {e}")))?;
        let dict = Dictionary::uniform(space, Ratio::new(n, d))
            .map_err(|e| CliError::Spec(format!("dictionary: {e}")))?;
        builder = builder.dictionary(dict);
        if let Some(cutover) = dict_spec.exact_cutover {
            builder = builder.exact_cutover(cutover);
        }
        if let Some(samples) = dict_spec.samples {
            builder = builder.mc_samples(samples);
        }
        if let Some(seed) = dict_spec.seed {
            builder = builder.mc_seed(seed);
        }
        if let Some(cap) = dict_spec.report_cap {
            builder = builder.report_cap(cap);
        }
    }
    Ok(builder.build())
}

/// Builds the engine and requests declared by a spec.
pub fn prepare(spec: &AuditSpec) -> Result<PreparedAudit, CliError> {
    let (schema, mut domain) = build_schema_domain(&spec.relations, &spec.constants)?;
    let defaults = spec.defaults.clone().unwrap_or_default();
    let mut parsed = Vec::new();
    for (i, case) in spec.audits.iter().enumerate() {
        let secret = case
            .secret
            .compile_single(&schema, &mut domain, "S")
            .map_err(|e| {
                CliError::Spec(format!(
                    "audit #{i}: bad secret `{}`: {e}",
                    case.secret.text()
                ))
            })?;
        let mut views = ViewSet::new();
        for v in &case.views {
            let compiled = v
                .compile_multi(&schema, &mut domain, "V")
                .map_err(|e| CliError::Spec(format!("audit #{i}: bad view `{}`: {e}", v.text())))?;
            for q in compiled {
                views.push(q);
            }
        }
        if views.is_empty() {
            return Err(CliError::Spec(format!("audit #{i}: no views given")));
        }
        parsed.push((secret, views));
    }

    let queries: Vec<&ConjunctiveQuery> = parsed
        .iter()
        .flat_map(|(s, vs)| std::iter::once(s).chain(vs.iter()))
        .collect();
    let engine = build_engine(schema, &domain, &defaults, &spec.dictionary, &queries, None)?;

    let mut requests = Vec::new();
    for (case, (secret, views)) in spec.audits.iter().zip(parsed) {
        let mut request = AuditRequest::new(secret, views);
        if let Some(name) = &case.name {
            request = request.named(name.clone());
        }
        if let Some(depth) = &case.depth {
            request = request.with_depth(parse_depth(depth)?);
        }
        if let Some((n, d)) = case.minute_threshold {
            request = request.with_minute_threshold(Ratio::new(n, d));
        }
        requests.push(request);
    }
    Ok(PreparedAudit { engine, requests })
}

/// Parses a spec, runs every audit (in parallel unless `sequential`), and
/// returns the JSON array of reports.
pub fn run_spec(text: &str, sequential: bool) -> Result<serde_json::Value, CliError> {
    let spec = parse_spec(text)?;
    let prepared = prepare(&spec)?;
    let reports = if sequential {
        prepared
            .requests
            .iter()
            .map(|r| prepared.engine.audit(r))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        prepared.engine.try_audit_batch(&prepared.requests)?
    };
    Ok(serde_json::to_value(&reports)?)
}

/// One step of a session script. Exactly one of the four action fields must
/// be set:
///
/// * `publish` — audit the secret against everything published plus this
///   view, then commit it (optional `name` labels the recipient);
/// * `candidate` — the same audit without committing (what-if);
/// * `snapshot` — save the session state under the given label;
/// * `restore` — rewind to the labelled snapshot.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct SessionStepSpec {
    /// View to publish, datalog or safe-SQL syntax.
    pub publish: Option<QuerySpec>,
    /// View to what-if audit, datalog or safe-SQL syntax.
    pub candidate: Option<QuerySpec>,
    /// Label to snapshot the session under.
    pub snapshot: Option<String>,
    /// Label of the snapshot to rewind to.
    pub restore: Option<String>,
    /// Recipient label for `publish` (defaults to the view's query name).
    pub name: Option<String>,
}

/// A session script: one secret, a sequence of publication steps.
#[derive(Debug, Clone, Deserialize)]
pub struct SessionSpec {
    /// The schema's relations.
    pub relations: Vec<RelationSpec>,
    /// Domain constants interned before query parsing.
    pub constants: Option<Vec<String>>,
    /// Dictionary directive; required for `"probabilistic"` depth. The
    /// support space covers the secret and every step's view.
    pub dictionary: Option<DictionarySpec>,
    /// Engine defaults (the session audits at the default depth).
    pub defaults: Option<DefaultsSpec>,
    /// Session label echoed into every step report.
    pub name: Option<String>,
    /// The secret query, datalog or safe-SQL syntax.
    pub secret: QuerySpec,
    /// The publication steps, replayed in order.
    pub steps: Vec<SessionStepSpec>,
}

/// Detects the format (JSON / TOML subset) and parses a session script.
pub fn parse_session_spec(text: &str) -> Result<SessionSpec, CliError> {
    let value = if text.trim_start().starts_with('{') {
        serde_json::parse(text)?
    } else {
        toml_subset::parse(text).map_err(CliError::Spec)?
    };
    Ok(serde_json::from_value(&value)?)
}

/// Replays a session script and returns one JSON entry per step: the
/// serialized [`qvsec::SessionReport`] for `publish`/`candidate` steps,
/// `{"snapshot": label}` / `{"restored": label}` markers otherwise.
pub fn run_session_spec(text: &str) -> Result<serde_json::Value, CliError> {
    run_session_spec_with_store(text, None)
}

/// [`run_session_spec`] with an optional durable store (the CLI's
/// `--store <PATH>` flag): compiled artifacts rehydrate from it before the
/// replay and write through to it, so a repeated run starts warm.
pub fn run_session_spec_with_store(
    text: &str,
    store: Option<&qvsec_store::StoreConfig>,
) -> Result<serde_json::Value, CliError> {
    let spec = parse_session_spec(text)?;
    let (schema, mut domain) = build_schema_domain(&spec.relations, &spec.constants)?;
    let defaults = spec.defaults.clone().unwrap_or_default();

    let secret = spec
        .secret
        .compile_single(&schema, &mut domain, "S")
        .map_err(|e| CliError::Spec(format!("bad secret `{}`: {e}", spec.secret.text())))?;
    let mut step_views: Vec<Option<ConjunctiveQuery>> = Vec::with_capacity(spec.steps.len());
    for (i, step) in spec.steps.iter().enumerate() {
        let actions = [
            step.publish.is_some(),
            step.candidate.is_some(),
            step.snapshot.is_some(),
            step.restore.is_some(),
        ]
        .iter()
        .filter(|a| **a)
        .count();
        if actions != 1 {
            return Err(CliError::Spec(format!(
                "step #{i}: exactly one of publish | candidate | snapshot | restore required"
            )));
        }
        step_views.push(match step.publish.as_ref().or(step.candidate.as_ref()) {
            Some(view) => Some(
                view.compile_single(&schema, &mut domain, "V")
                    .map_err(|e| {
                        CliError::Spec(format!("step #{i}: bad view `{}`: {e}", view.text()))
                    })?,
            ),
            None => None,
        });
    }

    let queries: Vec<&ConjunctiveQuery> = std::iter::once(&secret)
        .chain(step_views.iter().flatten())
        .collect();
    let backend = store.map(open_spec_store).transpose()?;
    let engine = Arc::new(build_engine(
        schema,
        &domain,
        &defaults,
        &spec.dictionary,
        &queries,
        backend,
    )?);
    if store.is_some() {
        engine
            .rehydrate()
            .map_err(|e| CliError::Audit(e.to_string()))?;
    }

    let mut session = engine.open_session(secret);
    if let Some(name) = &spec.name {
        session = session.named(name.clone());
    }
    let mut snapshots: std::collections::HashMap<String, qvsec::SessionSnapshot> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(spec.steps.len());
    for (step, view) in spec.steps.iter().zip(step_views) {
        let marker = |kind: &str, label: &str, views: usize| {
            serde_json::Value::Object(vec![
                (kind.to_string(), serde_json::Value::Str(label.to_string())),
                (
                    "views_published".to_string(),
                    serde_json::Value::Int(views as i128),
                ),
            ])
        };
        if let Some(label) = &step.snapshot {
            snapshots.insert(label.clone(), session.snapshot());
            out.push(marker("snapshot", label, session.views_published()));
            continue;
        }
        if let Some(label) = &step.restore {
            let snap = snapshots
                .get(label)
                .ok_or_else(|| CliError::Spec(format!("restore of unknown snapshot `{label}`")))?;
            session.restore(snap);
            out.push(marker("restored", label, session.views_published()));
            continue;
        }
        let view = view.expect("publish/candidate steps parsed a view");
        let report = if step.publish.is_some() {
            let name = step.name.clone().unwrap_or_else(|| view.name.clone());
            session.publish_named(name, view)?
        } else {
            session.audit_candidate(&view)?
        };
        out.push(serde_json::to_value(&report)?);
    }
    Ok(serde_json::Value::Array(out))
}

/// The schema/constants prelude shared by every spec format — all
/// `analyze_sql` needs, whatever else the spec declares.
#[derive(Debug, Clone, Deserialize)]
struct SchemaOnlySpec {
    relations: Vec<RelationSpec>,
    constants: Option<Vec<String>>,
}

/// Renders a SQL rejection as the wire protocol's `error` object, with the
/// structured `detail` (closed-enum reason code + byte span).
fn sql_error_value(e: &qvsec_sql::SqlError) -> serde_json::Value {
    use serde_json::Value;
    Value::Object(vec![(
        "error".to_string(),
        Value::Object(vec![
            (
                "kind".to_string(),
                Value::Str(qvsec_serve::ErrorKind::BadRequest.as_str().to_string()),
            ),
            (
                "reason".to_string(),
                Value::Str(format!("sql rejected: {e}")),
            ),
            (
                "detail".to_string(),
                Value::Object(vec![
                    (
                        "reason".to_string(),
                        Value::Str(e.reason.code().to_string()),
                    ),
                    (
                        "span".to_string(),
                        Value::Object(vec![
                            ("start".to_string(), Value::Int(e.span.start as i128)),
                            ("end".to_string(), Value::Int(e.span.end as i128)),
                        ]),
                    ),
                ]),
            ),
        ]),
    )])
}

/// Compiles a safe-SQL statement against the schema any spec file declares
/// (audit, session, or server spec — only `relations` and `constants` are
/// read) and returns `(body, ok)`. On success the body mirrors the server
/// `sql` op: `{"queries": [{"name", "datalog", "canonical"}]}` for SELECT
/// statements, the `show_tables`/`show_columns` shapes for SHOW
/// statements. On rejection the body is the wire `error` object with its
/// structured `detail`, and `ok` is false. Unlike the server, constants in
/// the statement need not be pre-declared: the local domain grows on
/// demand, matching how audit specs parse their own queries.
pub fn analyze_sql(
    spec_text: &str,
    sql: &str,
    name: &str,
) -> Result<(serde_json::Value, bool), CliError> {
    use serde_json::Value;
    let value = if spec_text.trim_start().starts_with('{') {
        serde_json::parse(spec_text)?
    } else {
        toml_subset::parse(spec_text).map_err(CliError::Spec)?
    };
    let schema_spec: SchemaOnlySpec = serde_json::from_value(&value)?;
    let (schema, mut domain) = build_schema_domain(&schema_spec.relations, &schema_spec.constants)?;
    let columns_value = |rel: &Schema, id: qvsec_data::RelationId| -> Value {
        Value::Array(
            rel.relation(id)
                .attributes
                .iter()
                .map(|a| Value::Str(a.clone()))
                .collect(),
        )
    };
    match qvsec_sql::parse_statement(sql) {
        Err(e) => Ok((sql_error_value(&e), false)),
        Ok(qvsec_sql::Statement::ShowTables) => {
            let tables = schema
                .relation_ids()
                .map(|id| {
                    Value::Object(vec![
                        (
                            "name".to_string(),
                            Value::Str(schema.relation(id).name.clone()),
                        ),
                        ("columns".to_string(), columns_value(&schema, id)),
                    ])
                })
                .collect();
            Ok((
                Value::Object(vec![("tables".to_string(), Value::Array(tables))]),
                true,
            ))
        }
        Ok(qvsec_sql::Statement::ShowColumns { table, table_span }) => {
            let resolved = schema.relation_by_name(&table).or_else(|| {
                let mut hits = schema
                    .relation_ids()
                    .filter(|id| schema.relation(*id).name.eq_ignore_ascii_case(&table));
                match (hits.next(), hits.next()) {
                    (Some(id), None) => Some(id),
                    _ => None,
                }
            });
            match resolved {
                Some(id) => Ok((
                    Value::Object(vec![
                        (
                            "table".to_string(),
                            Value::Str(schema.relation(id).name.clone()),
                        ),
                        ("columns".to_string(), columns_value(&schema, id)),
                    ]),
                    true,
                )),
                None => {
                    let e = qvsec_sql::SqlError::new(
                        qvsec_sql::RejectReason::UnknownTable,
                        table_span,
                        format!("unknown table `{table}`"),
                    );
                    Ok((sql_error_value(&e), false))
                }
            }
        }
        Ok(qvsec_sql::Statement::Select(_)) => {
            match qvsec_sql::compile_query(sql, &schema, &mut domain, name) {
                Err(e) => Ok((sql_error_value(&e), false)),
                Ok(queries) => Ok((render_compiled_queries(&queries, &schema, &domain), true)),
            }
        }
        // Locally there is no engine and no cache to probe, so
        // `SHOW CANONICAL` reduces to the canonical-form rendering; the
        // tier-annotated variant lives behind the server's `explain` op.
        Ok(qvsec_sql::Statement::ShowCanonical(stmt)) => {
            match qvsec_sql::compile_select(&stmt, &schema, &mut domain, name, sql) {
                Err(e) => Ok((sql_error_value(&e), false)),
                Ok(queries) => Ok((render_compiled_queries(&queries, &schema, &domain), true)),
            }
        }
    }
}

/// The `{"queries": [{"name", "datalog", "canonical"}]}` body shared by
/// `SELECT` analysis and local `SHOW CANONICAL`.
fn render_compiled_queries(
    queries: &[qvsec_cq::ConjunctiveQuery],
    schema: &Schema,
    domain: &qvsec_data::Domain,
) -> serde_json::Value {
    use serde_json::Value;
    let rendered = queries
        .iter()
        .map(|q| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(q.name.clone())),
                (
                    "datalog".to_string(),
                    Value::Str(q.display(schema, domain).to_string()),
                ),
                (
                    "canonical".to_string(),
                    Value::Str(qvsec_cq::canonical_form(q)),
                ),
            ])
        })
        .collect();
    Value::Object(vec![("queries".to_string(), Value::Array(rendered))])
}

/// A server specification: the schema/domain/dictionary context every
/// tenant audits in, plus registry and cache-budget knobs. Unlike audit and
/// session specs there are no queries here — secrets and views arrive over
/// the wire at runtime (and may only use constants declared in
/// `constants`). The dictionary, when given, is built over the **full**
/// tuple space of the declared schema and constants.
#[derive(Debug, Clone, Deserialize)]
pub struct ServeSpec {
    /// The schema's relations.
    pub relations: Vec<RelationSpec>,
    /// Domain constants runtime queries may mention.
    pub constants: Option<Vec<String>>,
    /// Dictionary over the full tuple space; required for
    /// `"probabilistic"` depth.
    pub dictionary: Option<DictionarySpec>,
    /// Engine defaults (tenant sessions audit at the default depth).
    pub defaults: Option<DefaultsSpec>,
    /// Total byte budget for the engine's artifact and kernel caches;
    /// unset keeps them append-only.
    pub cache_budget_bytes: Option<usize>,
    /// Cap on reported leak-entry / violation lists (serving knob).
    pub report_cap: Option<usize>,
    /// Registry shard count (default 16).
    pub shards: Option<usize>,
    /// Sessions idle longer than this many seconds are expired (demoted to
    /// the store, when one is configured).
    pub idle_timeout_secs: Option<u64>,
    /// Durable store behind the tenant journal and artifact caches, e.g.
    /// `{"backend": "log", "path": "/var/lib/qvsec"}`. The CLI's
    /// `--store <PATH>` flag overrides this with a log store at PATH.
    pub store: Option<qvsec_store::StoreConfig>,
    /// Connection-lifecycle knobs for the TCP front end; every field is
    /// optional and falls back to the server's defaults.
    pub server: Option<ServerSpec>,
}

/// The `server` block of a [`ServeSpec`]: connection-lifecycle knobs for
/// the NDJSON TCP front end, mirroring [`qvsec_serve::ServerConfig`].
#[derive(Debug, Clone, Default, Deserialize)]
pub struct ServerSpec {
    /// Accept gate: concurrent connections beyond this are turned away
    /// with a `server_at_capacity` notice (default 1024). The CLI's
    /// `--max-connections <N>` flag overrides this.
    pub max_connections: Option<usize>,
    /// Per-connection pipelining depth: how many parsed-but-unanswered
    /// requests the reader may run ahead of the processor (default 64).
    pub max_inflight: Option<usize>,
    /// Keep-alive limit: close (with a `request_limit` notice) after this
    /// many requests on one connection.
    pub max_requests_per_conn: Option<u64>,
    /// Keep-alive limit: close (with a `byte_limit` notice) after this
    /// many request bytes on one connection.
    pub max_bytes_per_conn: Option<u64>,
    /// Drop connections idle longer than this many milliseconds with an
    /// `idle_timeout` notice. Distinct from the registry-level
    /// `idle_timeout_secs`, which expires tenant *sessions*, not sockets.
    pub conn_idle_timeout_millis: Option<u64>,
    /// Slow-query threshold in milliseconds: requests handled slower than
    /// this are logged as NDJSON lines on stderr with their span stage
    /// breakdown. The CLI's `--slow-ms <N>` flag overrides this; either
    /// spelling also turns span tracing on.
    pub slow_ms: Option<u64>,
}

/// Resolves a spec's `server` block (and the CLI `--max-connections`
/// override, when given) onto a full [`qvsec_serve::ServerConfig`].
pub fn server_config(
    spec: &ServeSpec,
    max_connections_override: Option<usize>,
) -> qvsec_serve::ServerConfig {
    let block = spec.server.clone().unwrap_or_default();
    let defaults = qvsec_serve::ServerConfig::default();
    qvsec_serve::ServerConfig {
        max_connections: max_connections_override
            .or(block.max_connections)
            .unwrap_or(defaults.max_connections),
        max_inflight: block.max_inflight.unwrap_or(defaults.max_inflight),
        max_requests_per_conn: block.max_requests_per_conn,
        max_bytes_per_conn: block.max_bytes_per_conn,
        idle_timeout: block
            .conn_idle_timeout_millis
            .map(std::time::Duration::from_millis),
        slow_ms: block.slow_ms,
    }
}

/// Detects the format (JSON / TOML subset) and parses a server spec.
pub fn parse_serve_spec(text: &str) -> Result<ServeSpec, CliError> {
    let value = if text.trim_start().starts_with('{') {
        serde_json::parse(text)?
    } else {
        toml_subset::parse(text).map_err(CliError::Spec)?
    };
    Ok(serde_json::from_value(&value)?)
}

/// Builds the engine and sharded registry a server spec declares. With a
/// `store` block the registry journals tenant lifecycle to it and
/// rehydrates everything journaled before — tenants, artifacts, cache
/// counters — so a restart is invisible to clients.
pub fn build_registry(spec: &ServeSpec) -> Result<qvsec_serve::SessionRegistry, CliError> {
    let (schema, domain) = build_schema_domain(&spec.relations, &spec.constants)?;
    let defaults = spec.defaults.clone().unwrap_or_default();
    let store = spec.store.as_ref().map(open_spec_store).transpose()?;
    let mut builder = AuditEngine::builder(schema.clone(), domain.clone());
    if let Some(store) = &store {
        builder = builder.store(Arc::clone(store));
    }
    if let Some(depth) = &defaults.depth {
        builder = builder.default_depth(parse_depth(depth)?);
    }
    if let Some((n, d)) = defaults.minute_threshold {
        builder = builder.minute_threshold(Ratio::new(n, d));
    }
    if let Some(cap) = defaults.candidate_cap {
        builder = builder.candidate_cap(cap);
    }
    if let Some(total) = spec.cache_budget_bytes {
        builder = builder.cache_budget_bytes(total);
    }
    if let Some(cap) = spec.report_cap {
        builder = builder.report_cap(cap);
    }
    if let Some(dict_spec) = &spec.dictionary {
        let (n, d) = dict_spec.probability.unwrap_or((1, 2));
        let cap = dict_spec.cap.unwrap_or(4096);
        let space = qvsec_data::TupleSpace::full_with_cap(&schema, &domain, cap)
            .map_err(|e| CliError::Spec(format!("dictionary tuple space: {e}")))?;
        let dict = Dictionary::uniform(space, Ratio::new(n, d))
            .map_err(|e| CliError::Spec(format!("dictionary: {e}")))?;
        builder = builder.dictionary(dict);
        if let Some(cutover) = dict_spec.exact_cutover {
            builder = builder.exact_cutover(cutover);
        }
        if let Some(samples) = dict_spec.samples {
            builder = builder.mc_samples(samples);
        }
        if let Some(seed) = dict_spec.seed {
            builder = builder.mc_seed(seed);
        }
        // The top-level knob wins; a cap on the dictionary table (the spot
        // audit/session specs use) is honored rather than silently dropped.
        if let (None, Some(cap)) = (spec.report_cap, dict_spec.report_cap) {
            builder = builder.report_cap(cap);
        }
    }
    let config = qvsec_serve::RegistryConfig {
        shards: spec.shards.unwrap_or(16),
        idle_timeout: spec.idle_timeout_secs.map(std::time::Duration::from_secs),
    };
    let engine = Arc::new(builder.build());
    match store {
        Some(store) => qvsec_serve::SessionRegistry::with_store(engine, config, store)
            .map_err(|e| CliError::Audit(e.to_string())),
        None => Ok(qvsec_serve::SessionRegistry::with_config(engine, config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JSON_SPEC: &str = r#"{
        "relations": [
            {"name": "Employee", "attributes": ["name", "department", "phone"]}
        ],
        "defaults": {"depth": "exact"},
        "audits": [
            {
                "name": "row1",
                "secret": "S1(d) :- Employee(n, d, p)",
                "views": ["V1(n, d) :- Employee(n, d, p)"]
            },
            {
                "name": "row4",
                "secret": "S4(n) :- Employee(n, 'HR', p)",
                "views": ["V4(n) :- Employee(n, 'Mgmt', p)"]
            }
        ]
    }"#;

    #[test]
    fn json_spec_runs_and_reports() {
        let out = run_spec(JSON_SPEC, false).unwrap();
        let reports = out.as_array().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].field("name").as_str(), Some("row1"));
        assert_eq!(reports[0].field("secure"), &serde_json::Value::Bool(false));
        assert_eq!(reports[1].field("secure"), &serde_json::Value::Bool(true));
        assert_eq!(reports[1].field("class").as_str(), Some("NoDisclosure"));
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let a = run_spec(JSON_SPEC, false).unwrap();
        let b = run_spec(JSON_SPEC, true).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn toml_spec_matches_json_spec() {
        let toml = r#"
# Table 1 over Employee(name, department, phone)
[[relations]]
name = "Employee"
attributes = ["name", "department", "phone"]

[defaults]
depth = "exact"

[[audits]]
name = "row1"
secret = "S1(d) :- Employee(n, d, p)"
views = ["V1(n, d) :- Employee(n, d, p)"]

[[audits]]
name = "row4"
secret = "S4(n) :- Employee(n, 'HR', p)"
views = ["V4(n) :- Employee(n, 'Mgmt', p)"]
"#;
        let a = run_spec(JSON_SPEC, false).unwrap();
        let b = run_spec(toml, false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn probabilistic_specs_build_a_support_dictionary() {
        let spec = r#"{
            "relations": [{"name": "R", "attributes": ["x", "y"]}],
            "constants": ["a", "b"],
            "dictionary": {"probability": [1, 2]},
            "defaults": {"depth": "probabilistic", "minute_threshold": [1, 10]},
            "audits": [
                {"secret": "S(y) :- R(x, y)", "views": ["V(x) :- R(x, y)"]}
            ]
        }"#;
        let out = run_spec(spec, false).unwrap();
        let report = &out.as_array().unwrap()[0];
        assert!(!report.field("leakage").is_null());
        assert_eq!(
            report.field("totally_disclosed"),
            &serde_json::Value::Bool(false)
        );
        // The estimator metadata is surfaced in the report: a 4-tuple space
        // is evaluated exactly, streaming all 16 worlds.
        let estimator = report.field("estimator");
        assert_eq!(estimator.field("mode").as_str(), Some("Exact"));
        assert_eq!(estimator.field("worlds_streamed").as_int(), Some(16));
    }

    #[test]
    fn dictionary_estimator_knobs_force_and_configure_monte_carlo() {
        let spec = r#"{
            "relations": [{"name": "R", "attributes": ["x", "y"]}],
            "constants": ["a", "b"],
            "dictionary": {"probability": [1, 2], "exact_cutover": 0,
                           "samples": 1500, "seed": 99},
            "defaults": {"depth": "probabilistic"},
            "audits": [
                {"secret": "S(y) :- R(x, y)", "views": ["V(x) :- R(x, y)"]}
            ]
        }"#;
        let out = run_spec(spec, false).unwrap();
        let report = &out.as_array().unwrap()[0];
        let estimator = report.field("estimator");
        assert_eq!(estimator.field("mode").as_str(), Some("MonteCarlo"));
        assert_eq!(estimator.field("sample_count").as_int(), Some(1500));
        assert_eq!(estimator.field("seed").as_int(), Some(99));
        // Same spec, same seed: byte-identical output.
        assert_eq!(out, run_spec(spec, false).unwrap());
    }

    #[test]
    fn session_specs_replay_with_cache_metadata() {
        let spec = r#"{
            "relations": [{"name": "R", "attributes": ["x", "y"]}],
            "constants": ["a", "b"],
            "dictionary": {"probability": [1, 2]},
            "defaults": {"depth": "probabilistic"},
            "secret": "S(x, y) :- R(x, y)",
            "steps": [
                {"publish": "V1(x) :- R(x, y)"},
                {"snapshot": "s1"},
                {"publish": "V2(y) :- R(x, y)"},
                {"restore": "s1"},
                {"candidate": "V2(y) :- R(x, y)"}
            ]
        }"#;
        let out = run_session_spec(spec).unwrap();
        let entries = out.as_array().unwrap();
        assert_eq!(entries.len(), 5);
        let second = &entries[2];
        assert_eq!(second.field("step").as_int(), Some(2));
        assert!(
            second
                .field("cache")
                .field("crit_cache_hits")
                .as_int()
                .unwrap()
                > 0
        );
        assert!(
            second
                .field("cache")
                .field("compile_cache_hits")
                .as_int()
                .unwrap()
                > 0,
            "warm step compiles from the kernel memo"
        );
        // The candidate after the restore re-audits the same prefix as the
        // committed step 2: identical cumulative reports.
        assert_eq!(
            serde_json::to_string(entries[4].field("report")).unwrap(),
            serde_json::to_string(second.field("report")).unwrap()
        );
    }

    #[test]
    fn bad_session_specs_are_rejected() {
        let two_actions = r#"{
            "relations": [{"name": "R", "attributes": ["x"]}],
            "secret": "S(x) :- R(x)",
            "steps": [{"publish": "V(x) :- R(x)", "candidate": "W(x) :- R(x)"}]
        }"#;
        assert!(matches!(
            run_session_spec(two_actions),
            Err(CliError::Spec(_))
        ));
        let unknown_restore = r#"{
            "relations": [{"name": "R", "attributes": ["x"]}],
            "secret": "S(x) :- R(x)",
            "steps": [{"restore": "nope"}]
        }"#;
        assert!(matches!(
            run_session_spec(unknown_restore),
            Err(CliError::Spec(_))
        ));
    }

    #[test]
    fn serve_specs_build_budgeted_registries() {
        let spec = parse_serve_spec(
            r#"{
            "relations": [{"name": "R", "attributes": ["x", "y"]}],
            "constants": ["a", "b"],
            "dictionary": {"probability": [1, 2], "samples": 256, "seed": 3},
            "defaults": {"depth": "probabilistic"},
            "cache_budget_bytes": 65536,
            "shards": 4
        }"#,
        )
        .unwrap();
        let registry = build_registry(&spec).unwrap();
        assert_eq!(registry.shard_count(), 4);
        let secret = registry.parse("S(x, y) :- R(x, y)").unwrap();
        let view = registry.parse("V(x) :- R(x, y)").unwrap();
        let report = registry.publish("t", Some(&secret), None, view).unwrap();
        assert_eq!(report.report.secure, Some(false));
        assert!(report.report.leakage.is_some(), "probabilistic depth ran");
        // Runtime constants outside the declared domain are rejected.
        assert!(registry.parse("W(x) :- R(x, 'z')").is_err());
    }

    #[test]
    fn serve_specs_with_a_store_block_rehydrate_across_builds() {
        let dir = std::env::temp_dir().join(format!("qvsec-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = format!(
            r#"{{
            "relations": [{{"name": "R", "attributes": ["x", "y"]}}],
            "constants": ["a", "b"],
            "store": {{"backend": "log", "path": {}}}
        }}"#,
            serde_json::to_string(&dir.display().to_string()).unwrap()
        );
        let spec = parse_serve_spec(&text).unwrap();
        let registry = build_registry(&spec).unwrap();
        let secret = registry.parse("S(x, y) :- R(x, y)").unwrap();
        let view = registry.parse("V(x) :- R(x, y)").unwrap();
        registry.publish("t", Some(&secret), None, view).unwrap();
        let before = serde_json::to_string(&registry.stats()).unwrap();
        drop(registry);

        // A second build over the same spec replays the journal.
        let reborn = build_registry(&spec).unwrap();
        assert_eq!(reborn.tenant_count(), 1);
        assert_eq!(serde_json::to_string(&reborn.stats()).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_produce_spec_errors() {
        assert!(matches!(parse_spec("{"), Err(CliError::Spec(_))));
        let missing_view = r#"{
            "relations": [{"name": "R", "attributes": ["x"]}],
            "audits": [{"secret": "S(x) :- R(x)", "views": []}]
        }"#;
        let spec = parse_spec(missing_view).unwrap();
        assert!(matches!(prepare(&spec), Err(CliError::Spec(_))));
        let bad_depth = r#"{
            "relations": [{"name": "R", "attributes": ["x"]}],
            "defaults": {"depth": "warp"},
            "audits": [{"secret": "S(x) :- R(x)", "views": ["V(x) :- R(x)"]}]
        }"#;
        let spec = parse_spec(bad_depth).unwrap();
        assert!(matches!(prepare(&spec), Err(CliError::Spec(_))));
    }
}
