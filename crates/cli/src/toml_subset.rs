//! A small TOML-subset parser producing [`serde_json::Value`] trees.
//!
//! Supports exactly what audit specs need:
//!
//! * `#` comments and blank lines,
//! * `[table]` and nested `[table.subtable]` headers,
//! * `[[array_of_tables]]` headers,
//! * `key = value` with values: basic `"strings"`, integers, floats,
//!   booleans, and single-line arrays of those (including nested arrays).
//!
//! Multi-line strings, dotted keys, inline tables and datetimes are out of
//! scope and reported as errors.

use serde_json::Value;

/// Parses the TOML subset into a JSON object tree.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut root = Value::Object(Vec::new());
    // Path of the table currently being filled.
    let mut current_path: Vec<(String, bool)> = Vec::new(); // (key, is_array_table)
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[header]]".into()))?;
            current_path = split_path(inner)
                .map_err(err)?
                .into_iter()
                .map(|k| (k, false))
                .collect();
            if let Some(last) = current_path.last_mut() {
                last.1 = true;
            }
            // Push a fresh element onto the array of tables.
            let target = navigate(&mut root, &current_path, true).map_err(err)?;
            debug_assert!(matches!(target, Value::Object(_)));
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [header]".into()))?;
            current_path = split_path(inner)
                .map_err(err)?
                .into_iter()
                .map(|k| (k, false))
                .collect();
            let target = navigate(&mut root, &current_path, false).map_err(err)?;
            debug_assert!(matches!(target, Value::Object(_)));
        } else {
            let (key, value_text) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`".into()))?;
            let key = key.trim();
            if key.is_empty() || key.contains('.') {
                return Err(err(format!("unsupported key `{key}`")));
            }
            let value = parse_value(value_text.trim()).map_err(err)?;
            let table = navigate(&mut root, &current_path, false).map_err(err)?;
            match table {
                Value::Object(entries) => {
                    if entries.iter().any(|(k, _)| k == key) {
                        return Err(err(format!("duplicate key `{key}`")));
                    }
                    entries.push((key.to_string(), value));
                }
                _ => return Err(err("internal: table is not an object".into())),
            }
        }
    }
    Ok(root)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a quoted string starts a comment.
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_path(inner: &str) -> Result<Vec<String>, String> {
    inner
        .split('.')
        .map(|p| {
            let p = p.trim();
            if p.is_empty() {
                Err("empty table-path segment".to_string())
            } else {
                Ok(p.to_string())
            }
        })
        .collect()
}

/// Walks (creating as needed) to the object named by `path`. For a path
/// whose final segment is an array table, `push_new` appends a fresh
/// element; otherwise the last element is returned.
fn navigate<'a>(
    root: &'a mut Value,
    path: &[(String, bool)],
    push_new: bool,
) -> Result<&'a mut Value, String> {
    let mut cursor = root;
    for (i, (key, is_array)) in path.iter().enumerate() {
        let last = i + 1 == path.len();
        let entries = match cursor {
            Value::Object(entries) => entries,
            _ => return Err(format!("`{key}` is not a table")),
        };
        if !entries.iter().any(|(k, _)| k == key) {
            let fresh = if *is_array {
                Value::Array(vec![Value::Object(Vec::new())])
            } else {
                Value::Object(Vec::new())
            };
            entries.push((key.clone(), fresh));
        } else if *is_array && last && push_new {
            let (_, v) = entries
                .iter_mut()
                .find(|(k, _)| k == key)
                .expect("just checked presence");
            match v {
                Value::Array(items) => items.push(Value::Object(Vec::new())),
                _ => return Err(format!("`{key}` is not an array of tables")),
            }
        }
        let (_, v) = entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .expect("just inserted or found");
        cursor = if *is_array {
            match v {
                Value::Array(items) => items
                    .last_mut()
                    .ok_or_else(|| format!("array table `{key}` is empty"))?,
                _ => return Err(format!("`{key}` is not an array of tables")),
            }
        } else if matches!(v, Value::Array(_)) {
            return Err(format!("`{key}` is an array, not a table"));
        } else {
            v
        };
    }
    Ok(cursor)
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        if inner.contains('"') {
            return Err(format!("embedded quotes are not supported: `{text}`"));
        }
        return Ok(Value::Str(unescape(inner)?));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        return parse_array(text);
    }
    if let Ok(i) = text.replace('_', "").parse::<i128>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.replace('_', "").parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("unsupported value `{text}`"))
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return Err(format!("unsupported escape \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_array(text: &str) -> Result<Value, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("unterminated array `{text}`"))?;
    let mut items = Vec::new();
    for part in split_array_items(inner)? {
        let part = part.trim();
        if !part.is_empty() {
            items.push(parse_value(part)?);
        }
    }
    Ok(Value::Array(items))
}

/// Splits array items on commas that are outside strings and nested arrays.
fn split_array_items(inner: &str) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '[' if !in_string => {
                depth += 1;
                current.push(c);
            }
            ']' if !in_string => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced brackets in array".to_string())?;
                current.push(c);
            }
            ',' if !in_string && depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err("unterminated string in array".to_string());
    }
    if depth != 0 {
        return Err("unbalanced brackets in array".to_string());
    }
    parts.push(current);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_array_tables_and_scalars() {
        let text = r#"
# top comment
title = "spec"   # trailing comment
count = 3
ratio = [1, 2]

[defaults]
depth = "exact"
threshold = [1, 10]

[[audits]]
name = "a"
views = ["V(x) :- R(x, y)"]

[[audits]]
name = "b"
flag = true
nested = [[1, 2], [3]]
"#;
        let v = parse(text).unwrap();
        assert_eq!(v.field("title").as_str(), Some("spec"));
        assert_eq!(v.field("count"), &Value::Int(3));
        assert_eq!(v.field("defaults").field("depth").as_str(), Some("exact"));
        let audits = v.field("audits").as_array().unwrap();
        assert_eq!(audits.len(), 2);
        assert_eq!(audits[0].field("name").as_str(), Some("a"));
        assert_eq!(audits[1].field("flag"), &Value::Bool(true));
        assert_eq!(
            audits[1].field("nested"),
            &Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
                Value::Array(vec![Value::Int(3)]),
            ])
        );
    }

    #[test]
    fn strings_may_contain_hashes_and_brackets() {
        let v = parse(r##"q = "S(x) :- R(x, 'a'), x != 'b' # not a comment""##).unwrap();
        assert_eq!(
            v.field("q").as_str(),
            Some("S(x) :- R(x, 'a'), x != 'b' # not a comment")
        );
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(parse("[unterminated").is_err());
        assert!(parse("key").is_err());
        assert!(parse("key = ").is_err());
        assert!(parse("key = 2000-01-01").is_err());
        assert!(parse("a = 1\na = 2").is_err());
    }
}
