//! Recursive-descent parser for the safe SQL subset.
//!
//! Accepted grammar (keywords case-insensitive):
//!
//! ```text
//! statement   := select | show
//! show        := SHOW TABLES | SHOW COLUMNS FROM ident
//! select      := SELECT column (',' column)*
//!                FROM table_ref (',' table_ref | join)*
//!                [WHERE conj] [';']
//! join        := [INNER] JOIN table_ref ON conj
//! table_ref   := ident [[AS] ident]
//! conj        := pred (AND pred)*
//! pred        := '(' conj ')' | operand '=' operand
//!              | column IN '(' literal (',' literal)* ')'
//! operand     := column | literal
//! column      := ident ['.' ident]
//! literal     := string | number
//! ```
//!
//! Everything else in SQL is *deliberately* outside the subset and is
//! rejected with a dedicated [`RejectReason`] and the offending span —
//! never silently dropped or narrowed.

use crate::error::{RejectReason, Span, SqlError};
use crate::lexer::{lex, Token, TokenKind};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A `SELECT` in the subset.
    Select(SelectStmt),
    /// `SHOW TABLES`.
    ShowTables,
    /// `SHOW COLUMNS FROM <table>`.
    ShowColumns {
        /// Table name as written.
        table: String,
        /// Span of the table name.
        table_span: Span,
    },
    /// `SHOW CANONICAL SELECT ...` — explain the canonical form (and, over
    /// the wire, the memoized artifact tiers) of a subset SELECT.
    ShowCanonical(SelectStmt),
}

/// A `SELECT` statement restricted to the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// Projection list, in order.
    pub items: Vec<ColumnRef>,
    /// `FROM` entries (comma joins and `JOIN`s alike), in order.
    pub tables: Vec<TableRef>,
    /// All predicates: `ON` conditions first (in join order), then the
    /// `WHERE` conjunction.
    pub predicates: Vec<Predicate>,
}

/// A column reference, optionally qualified by a table name or alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier (table name or alias) if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Span of the whole reference.
    pub span: Span,
}

/// A `FROM` entry: a table with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name as written.
    pub table: String,
    /// Alias if written (`Employee e` or `Employee AS e`).
    pub alias: Option<String>,
    /// Span of the table name.
    pub span: Span,
}

/// A string or integer literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// Literal content (quotes stripped for strings; digit text for
    /// numbers — both intern into the domain by name).
    pub text: String,
    /// Source span.
    pub span: Span,
}

/// One operand of an equality predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal constant.
    Literal(Literal),
}

/// A predicate in the subset: equality or an `IN`-list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `lhs = rhs`.
    Eq {
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Span of the whole predicate.
        span: Span,
    },
    /// `column IN (lit, ...)`.
    In {
        /// The constrained column.
        column: ColumnRef,
        /// The literal disjuncts.
        list: Vec<Literal>,
        /// Span of the whole predicate.
        span: Span,
    },
}

impl Predicate {
    /// The source span of the predicate.
    pub fn span(&self) -> Span {
        match self {
            Predicate::Eq { span, .. } | Predicate::In { span, .. } => *span,
        }
    }
}

const AGGREGATES: &[&str] = &[
    "count", "sum", "avg", "min", "max", "median", "stddev", "variance", "total",
];

const CLAUSE_KEYWORDS: &[&str] = &[
    "distinct",
    "group",
    "order",
    "having",
    "limit",
    "offset",
    "union",
    "intersect",
    "except",
    "top",
];

fn is_kw(token: &Token, kw: &str) -> bool {
    matches!(&token.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn kw_of(token: &Token) -> Option<String> {
    match &token.kind {
        TokenKind::Ident(s) => Some(s.to_ascii_lowercase()),
        _ => None,
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    source: &'a str,
}

/// Parses one statement of the subset.
pub fn parse_statement(source: &str) -> Result<Statement, SqlError> {
    let _span = qvsec_obs::Span::enter("sql.parse");
    qvsec_obs::counter("sql.statements").inc();
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        source,
    };
    let stmt = p.statement()?;
    p.finish()?;
    Ok(stmt)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if is_kw(self.peek(), kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, SqlError> {
        if is_kw(self.peek(), kw) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(SqlError::new(
                RejectReason::Syntax,
                t.span,
                format!(
                    "expected `{}`, found {}",
                    kw.to_uppercase(),
                    t.kind.describe()
                ),
            ))
        }
    }

    fn syntax(&self, span: Span, message: impl Into<String>) -> SqlError {
        SqlError::new(RejectReason::Syntax, span, message)
    }

    /// Rejects well-known out-of-subset keywords at the current position,
    /// with the reason that names them. Returns `Ok(())` when the current
    /// token is not one of them.
    fn reject_unsupported_keyword(&self) -> Result<(), SqlError> {
        let t = self.peek();
        let Some(kw) = kw_of(t) else { return Ok(()) };
        let (reason, what) = match kw.as_str() {
            "or" => (RejectReason::UnsupportedOr, "disjunction (OR)"),
            "not" => (RejectReason::UnsupportedNot, "negation (NOT)"),
            "between" => (RejectReason::UnsupportedRange, "BETWEEN range"),
            "like" | "ilike" => (RejectReason::UnsupportedComparison, "pattern matching"),
            "is" | "null" => (RejectReason::UnsupportedComparison, "NULL tests"),
            "exists" => (RejectReason::UnsupportedSubquery, "EXISTS subquery"),
            "case" => (RejectReason::UnsupportedClause, "CASE expression"),
            _ => {
                if CLAUSE_KEYWORDS.contains(&kw.as_str()) {
                    (RejectReason::UnsupportedClause, "this clause")
                } else {
                    return Ok(());
                }
            }
        };
        Err(SqlError::new(
            reason,
            t.span,
            format!(
                "{} is outside the safe subset (got `{}`)",
                what,
                t.span.slice(self.source)
            ),
        ))
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("show") {
            return self.show_statement();
        }
        if is_kw(self.peek(), "select") {
            self.bump();
            return Ok(Statement::Select(self.select_statement()?));
        }
        let t = self.peek();
        Err(self.syntax(
            t.span,
            format!(
                "expected SELECT, SHOW TABLES or SHOW COLUMNS, found {}",
                t.kind.describe()
            ),
        ))
    }

    fn show_statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("tables") {
            return Ok(Statement::ShowTables);
        }
        if self.eat_kw("columns") {
            self.expect_kw("from")?;
            let t = self.bump();
            let TokenKind::Ident(name) = t.kind else {
                return Err(self.syntax(
                    t.span,
                    format!("expected a table name, found {}", t.kind.describe()),
                ));
            };
            return Ok(Statement::ShowColumns {
                table: name,
                table_span: t.span,
            });
        }
        if self.eat_kw("canonical") {
            self.expect_kw("select")?;
            return Ok(Statement::ShowCanonical(self.select_statement()?));
        }
        let t = self.peek();
        Err(self.syntax(
            t.span,
            format!(
                "expected TABLES, COLUMNS or CANONICAL after SHOW, found {}",
                t.kind.describe()
            ),
        ))
    }

    fn select_statement(&mut self) -> Result<SelectStmt, SqlError> {
        if let Some(kw) = kw_of(self.peek()) {
            if kw == "distinct" {
                let t = self.peek();
                return Err(SqlError::new(
                    RejectReason::UnsupportedClause,
                    t.span,
                    "SELECT DISTINCT is outside the safe subset \
                     (projections are set-semantics already)",
                ));
            }
        }
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !matches!(self.peek().kind, TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        self.expect_kw("from")?;
        let mut tables = vec![self.table_ref()?];
        let mut predicates = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                    tables.push(self.table_ref()?);
                }
                TokenKind::Ident(_) => {
                    let kw = kw_of(self.peek()).unwrap_or_default();
                    match kw.as_str() {
                        "inner" | "join" => {
                            if kw == "inner" {
                                self.bump();
                            }
                            self.expect_kw("join")?;
                            tables.push(self.table_ref()?);
                            self.expect_kw("on")?;
                            self.conjunction(&mut predicates)?;
                        }
                        "left" | "right" | "full" | "outer" | "cross" | "natural" => {
                            let t = self.bump();
                            return Err(SqlError::new(
                                RejectReason::UnsupportedJoin,
                                t.span,
                                format!(
                                    "`{}` joins are outside the safe subset; \
                                     use inner JOIN ... ON or comma joins",
                                    kw.to_uppercase()
                                ),
                            ));
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        if self.eat_kw("where") {
            self.conjunction(&mut predicates)?;
        }
        Ok(SelectStmt {
            items,
            tables,
            predicates,
        })
    }

    fn select_item(&mut self) -> Result<ColumnRef, SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Star => Err(SqlError::new(
                RejectReason::SelectStar,
                t.span,
                "SELECT * is outside the safe subset; name the projected columns",
            )),
            TokenKind::Str(_) | TokenKind::Number(_) => Err(self.syntax(
                t.span,
                "literals are not allowed in the SELECT list; project columns only",
            )),
            TokenKind::LParen => {
                self.bump();
                if is_kw(self.peek(), "select") {
                    Err(SqlError::new(
                        RejectReason::UnsupportedSubquery,
                        t.span,
                        "subqueries are outside the safe subset",
                    ))
                } else {
                    Err(self.syntax(t.span, "parenthesized SELECT items are not supported"))
                }
            }
            TokenKind::Ident(_) => {
                self.reject_unsupported_keyword()?;
                self.reject_aggregate_call()?;
                self.column_ref()
            }
            _ => Err(self.syntax(
                t.span,
                format!("expected a column name, found {}", t.kind.describe()),
            )),
        }
    }

    /// Errors if the current position is `aggregate_fn (`.
    fn reject_aggregate_call(&self) -> Result<(), SqlError> {
        let t = self.peek();
        if let Some(kw) = kw_of(t) {
            if AGGREGATES.contains(&kw.as_str()) && matches!(self.peek2().kind, TokenKind::LParen) {
                return Err(SqlError::new(
                    RejectReason::UnsupportedAggregate,
                    t.span,
                    format!(
                        "aggregate `{}` is outside the safe subset",
                        kw.to_uppercase()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let t = self.bump();
        match t.kind {
            TokenKind::LParen => {
                if is_kw(self.peek(), "select") {
                    Err(SqlError::new(
                        RejectReason::UnsupportedSubquery,
                        t.span,
                        "derived tables (FROM (SELECT ...)) are outside the safe subset",
                    ))
                } else {
                    Err(self.syntax(t.span, "expected a table name"))
                }
            }
            TokenKind::Ident(name) => {
                let span = t.span;
                let mut alias = None;
                if self.eat_kw("as") {
                    let a = self.bump();
                    let TokenKind::Ident(an) = a.kind else {
                        return Err(self.syntax(
                            a.span,
                            format!("expected an alias after AS, found {}", a.kind.describe()),
                        ));
                    };
                    alias = Some(an);
                } else if let TokenKind::Ident(an) = &self.peek().kind {
                    // a bare identifier that is not a structural keyword is
                    // an alias (`FROM Employee e`)
                    let lower = an.to_ascii_lowercase();
                    const STRUCTURAL: &[&str] = &[
                        "where",
                        "join",
                        "inner",
                        "on",
                        "left",
                        "right",
                        "full",
                        "outer",
                        "cross",
                        "natural",
                        "group",
                        "order",
                        "having",
                        "limit",
                        "offset",
                        "union",
                        "intersect",
                        "except",
                    ];
                    if !STRUCTURAL.contains(&lower.as_str()) {
                        alias = Some(an.clone());
                        self.bump();
                    }
                }
                Ok(TableRef {
                    table: name,
                    alias,
                    span,
                })
            }
            other => Err(self.syntax(
                t.span,
                format!("expected a table name, found {}", other.describe()),
            )),
        }
    }

    fn conjunction(&mut self, out: &mut Vec<Predicate>) -> Result<(), SqlError> {
        loop {
            self.predicate(out)?;
            if is_kw(self.peek(), "and") {
                self.bump();
                continue;
            }
            if is_kw(self.peek(), "or") {
                let t = self.peek();
                return Err(SqlError::new(
                    RejectReason::UnsupportedOr,
                    t.span,
                    "disjunction (OR) is outside the safe subset; \
                     use IN-lists for enumerated alternatives",
                ));
            }
            return Ok(());
        }
    }

    fn predicate(&mut self, out: &mut Vec<Predicate>) -> Result<(), SqlError> {
        if matches!(self.peek().kind, TokenKind::LParen) {
            let open = self.bump();
            if is_kw(self.peek(), "select") {
                return Err(SqlError::new(
                    RejectReason::UnsupportedSubquery,
                    open.span,
                    "subqueries are outside the safe subset",
                ));
            }
            self.conjunction(out)?;
            let t = self.bump();
            if !matches!(t.kind, TokenKind::RParen) {
                return Err(
                    self.syntax(t.span, format!("expected `)`, found {}", t.kind.describe()))
                );
            }
            return Ok(());
        }
        self.reject_unsupported_keyword()?;
        let lhs = self.operand()?;
        // the operator decides the predicate form
        let op = self.peek().clone();
        match &op.kind {
            TokenKind::Eq => {
                self.bump();
                if matches!(self.peek().kind, TokenKind::LParen) && is_kw(self.peek2(), "select") {
                    return Err(SqlError::new(
                        RejectReason::UnsupportedSubquery,
                        self.peek().span,
                        "subqueries are outside the safe subset",
                    ));
                }
                self.reject_unsupported_keyword()?;
                let rhs = self.operand()?;
                let span = Span::new(operand_span(&lhs).start, operand_span(&rhs).end);
                out.push(Predicate::Eq { lhs, rhs, span });
                Ok(())
            }
            TokenKind::Lt | TokenKind::Le | TokenKind::Gt | TokenKind::Ge | TokenKind::Ne => {
                Err(SqlError::new(
                    RejectReason::UnsupportedComparison,
                    op.span,
                    format!(
                        "comparison {} is outside the safe subset; only `=` and \
                         IN-lists are auditable",
                        op.kind.describe()
                    ),
                ))
            }
            TokenKind::Ident(_) => {
                let kw = kw_of(&op).unwrap_or_default();
                match kw.as_str() {
                    "in" => {
                        self.bump();
                        let column = match lhs {
                            Operand::Column(c) => c,
                            Operand::Literal(l) => {
                                return Err(
                                    self.syntax(l.span, "the left side of IN must be a column")
                                )
                            }
                        };
                        let list = self.in_list()?;
                        let end = self.tokens[self.pos - 1].span.end;
                        out.push(Predicate::In {
                            span: Span::new(column.span.start, end),
                            column,
                            list,
                        });
                        Ok(())
                    }
                    "not" => Err(SqlError::new(
                        RejectReason::UnsupportedNot,
                        op.span,
                        "negation (NOT) is outside the safe subset",
                    )),
                    "between" => Err(SqlError::new(
                        RejectReason::UnsupportedRange,
                        op.span,
                        "BETWEEN ranges are outside the safe subset",
                    )),
                    "like" | "ilike" => Err(SqlError::new(
                        RejectReason::UnsupportedComparison,
                        op.span,
                        "pattern matching (LIKE) is outside the safe subset",
                    )),
                    "is" => Err(SqlError::new(
                        RejectReason::UnsupportedComparison,
                        op.span,
                        "NULL tests (IS [NOT] NULL) are outside the safe subset",
                    )),
                    _ => Err(self.syntax(
                        op.span,
                        format!("expected `=`, `IN` or `AND`, found {}", op.kind.describe()),
                    )),
                }
            }
            _ => Err(self.syntax(
                op.span,
                format!("expected `=` or `IN`, found {}", op.kind.describe()),
            )),
        }
    }

    fn in_list(&mut self) -> Result<Vec<Literal>, SqlError> {
        let open = self.bump();
        if !matches!(open.kind, TokenKind::LParen) {
            return Err(self.syntax(
                open.span,
                format!("expected `(` after IN, found {}", open.kind.describe()),
            ));
        }
        if matches!(self.peek().kind, TokenKind::RParen) {
            let close = self.bump();
            return Err(SqlError::new(
                RejectReason::EmptyInList,
                Span::new(open.span.start, close.span.end),
                "IN () has no elements",
            ));
        }
        if is_kw(self.peek(), "select") {
            return Err(SqlError::new(
                RejectReason::UnsupportedSubquery,
                self.peek().span,
                "IN (SELECT ...) subqueries are outside the safe subset",
            ));
        }
        let mut list = Vec::new();
        loop {
            let t = self.bump();
            match t.kind {
                TokenKind::Str(s) => list.push(Literal {
                    text: s,
                    span: t.span,
                }),
                TokenKind::Number(n) => list.push(Literal {
                    text: n,
                    span: t.span,
                }),
                other => {
                    return Err(self.syntax(
                        t.span,
                        format!(
                            "IN-lists may only contain literals, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
            let sep = self.bump();
            match sep.kind {
                TokenKind::Comma => continue,
                TokenKind::RParen => return Ok(list),
                other => {
                    return Err(self.syntax(
                        sep.span,
                        format!("expected `,` or `)`, found {}", other.describe()),
                    ))
                }
            }
        }
    }

    fn operand(&mut self) -> Result<Operand, SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Str(s) => {
                self.bump();
                Ok(Operand::Literal(Literal {
                    text: s.clone(),
                    span: t.span,
                }))
            }
            TokenKind::Number(n) => {
                self.bump();
                Ok(Operand::Literal(Literal {
                    text: n.clone(),
                    span: t.span,
                }))
            }
            TokenKind::Ident(_) => {
                self.reject_aggregate_call()?;
                Ok(Operand::Column(self.column_ref()?))
            }
            other => Err(self.syntax(
                t.span,
                format!("expected a column or literal, found {}", other.describe()),
            )),
        }
    }

    /// Parses `ident` or `ident.ident`. After the dot any identifier is
    /// accepted (even keyword spellings), so printed columns like
    /// `t0.order` survive the round trip.
    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let t = self.bump();
        let TokenKind::Ident(first) = t.kind else {
            return Err(self.syntax(
                t.span,
                format!("expected a column name, found {}", t.kind.describe()),
            ));
        };
        if matches!(self.peek().kind, TokenKind::Dot) {
            self.bump();
            let c = self.bump();
            let TokenKind::Ident(col) = c.kind else {
                return Err(self.syntax(
                    c.span,
                    format!("expected a column after `.`, found {}", c.kind.describe()),
                ));
            };
            return Ok(ColumnRef {
                table: Some(first),
                column: col,
                span: Span::new(t.span.start, c.span.end),
            });
        }
        Ok(ColumnRef {
            table: None,
            column: first,
            span: t.span,
        })
    }

    fn finish(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek().kind, TokenKind::Semi) {
            self.bump();
        }
        let t = self.peek();
        if matches!(t.kind, TokenKind::Eof) {
            return Ok(());
        }
        self.reject_unsupported_keyword()?;
        Err(self.syntax(
            t.span,
            format!("expected end of statement, found {}", t.kind.describe()),
        ))
    }
}

fn operand_span(o: &Operand) -> Span {
    match o {
        Operand::Column(c) => c.span,
        Operand::Literal(l) => l.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(src: &str) -> SelectStmt {
        match parse_statement(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn reject(src: &str) -> SqlError {
        parse_statement(src).unwrap_err()
    }

    #[test]
    fn parses_projection_joins_and_where() {
        let s = select(
            "SELECT e.name, d FROM Employee AS e JOIN Dept ON e.dept = Dept.id \
             WHERE e.name = 'ann' AND d IN ('x', 'y');",
        );
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[0].table.as_deref(), Some("e"));
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.tables[0].alias.as_deref(), Some("e"));
        assert_eq!(s.predicates.len(), 3);
        assert!(matches!(&s.predicates[2], Predicate::In { list, .. } if list.len() == 2));
    }

    #[test]
    fn comma_joins_and_bare_aliases() {
        let s = select("select x from R a, R b where a.x = b.y");
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.tables[1].alias.as_deref(), Some("b"));
        assert_eq!(s.predicates.len(), 1);
    }

    #[test]
    fn show_statements() {
        assert_eq!(
            parse_statement("SHOW TABLES").unwrap(),
            Statement::ShowTables
        );
        match parse_statement("show columns from Employee;").unwrap() {
            Statement::ShowColumns { table, table_span } => {
                assert_eq!(table, "Employee");
                assert_eq!(table_span.slice("show columns from Employee;"), "Employee");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_conjunctions_flatten() {
        let s = select("SELECT x FROM R WHERE (x = 'a' AND (y = 'b'))");
        assert_eq!(s.predicates.len(), 2);
    }

    #[test]
    fn rejections_carry_reason_and_span() {
        let cases: &[(&str, RejectReason, &str)] = &[
            ("SELECT * FROM R", RejectReason::SelectStar, "*"),
            (
                "SELECT x FROM R WHERE x = 'a' OR x = 'b'",
                RejectReason::UnsupportedOr,
                "OR",
            ),
            (
                "SELECT x FROM R WHERE NOT x = 'a'",
                RejectReason::UnsupportedNot,
                "NOT",
            ),
            (
                "SELECT x FROM R WHERE x < 'a'",
                RejectReason::UnsupportedComparison,
                "<",
            ),
            (
                "SELECT x FROM R WHERE x BETWEEN 1 AND 2",
                RejectReason::UnsupportedRange,
                "BETWEEN",
            ),
            (
                "SELECT COUNT(x) FROM R",
                RejectReason::UnsupportedAggregate,
                "COUNT",
            ),
            (
                "SELECT x FROM (SELECT y FROM R)",
                RejectReason::UnsupportedSubquery,
                "(",
            ),
            (
                "SELECT x FROM R WHERE x IN (SELECT y FROM R)",
                RejectReason::UnsupportedSubquery,
                "SELECT y FROM R)".split_whitespace().next().unwrap(),
            ),
            (
                "SELECT x FROM R GROUP BY x",
                RejectReason::UnsupportedClause,
                "GROUP",
            ),
            (
                "SELECT DISTINCT x FROM R",
                RejectReason::UnsupportedClause,
                "DISTINCT",
            ),
            (
                "SELECT x FROM R LEFT JOIN S ON R.x = S.y",
                RejectReason::UnsupportedJoin,
                "LEFT",
            ),
            (
                "SELECT x FROM R WHERE x IN ()",
                RejectReason::EmptyInList,
                "()",
            ),
        ];
        for (src, reason, frag) in cases {
            let e = reject(src);
            assert_eq!(e.reason, *reason, "for {src}: {e}");
            assert!(
                e.span.slice(src).starts_with(frag) || e.span.slice(src).contains(frag),
                "span {} of {src} is `{}`, expected it to cover `{frag}`",
                e.span,
                e.span.slice(src)
            );
        }
    }

    #[test]
    fn eq_span_covers_both_operands() {
        let src = "SELECT x FROM R WHERE a.x = 'p'";
        let s = select(src);
        assert_eq!(s.predicates[0].span().slice(src), "a.x = 'p'");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert_eq!(
            reject("SELECT x FROM R; extra").reason,
            RejectReason::Syntax
        );
        assert_eq!(
            reject("SELECT x FROM R UNION SELECT y FROM R").reason,
            RejectReason::UnsupportedClause
        );
        assert_eq!(
            reject("SELECT x FROM R ORDER BY x").reason,
            RejectReason::UnsupportedClause
        );
        assert_eq!(
            reject("SELECT x FROM R LIMIT 5").reason,
            RejectReason::UnsupportedClause
        );
    }

    #[test]
    fn keyword_after_dot_is_a_column() {
        let s = select("SELECT t0.order FROM R t0");
        assert_eq!(s.items[0].column, "order");
    }
}
