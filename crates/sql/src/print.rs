//! Pretty-printing conjunctive queries back into the safe SQL subset.
//!
//! Only part of the CQ language is SQL-expressible here: queries with a
//! non-empty head, at least one atom and no comparison predicates. For
//! those, `parse(print(q))` compiles to a query with the same
//! [`qvsec_cq::canonical_form`] — the round-trip property the proptest
//! suite pins.

use crate::lexer::is_identifier;
use qvsec_cq::{ConjunctiveQuery, Term};
use qvsec_data::{Domain, Schema, Value};
use std::fmt;

/// Why a conjunctive query cannot be rendered in the SQL subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSqlExpressible {
    /// Human-readable explanation.
    pub message: String,
}

impl NotSqlExpressible {
    fn new(message: impl Into<String>) -> Self {
        NotSqlExpressible {
            message: message.into(),
        }
    }
}

impl fmt::Display for NotSqlExpressible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not expressible in the SQL subset: {}", self.message)
    }
}

impl std::error::Error for NotSqlExpressible {}

/// A conjunctive query pre-rendered as subset SQL; implements
/// [`fmt::Display`].
#[derive(Debug, Clone)]
pub struct SqlDisplay {
    text: String,
}

impl SqlDisplay {
    /// The rendered SQL text.
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for SqlDisplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Renders `query` as subset SQL, or explains why it cannot be.
pub fn sql_display(
    query: &ConjunctiveQuery,
    schema: &Schema,
    domain: &Domain,
) -> Result<SqlDisplay, NotSqlExpressible> {
    sql_text(query, schema, domain).map(|text| SqlDisplay { text })
}

/// Renders `query` as subset SQL text.
///
/// The rendering aliases the i-th atom as `t{i}`, fully qualifies every
/// column, re-expresses shared variables as equality predicates against
/// their first occurrence, and turns constant positions into
/// `t{i}.col = 'value'` predicates.
pub fn sql_text(
    query: &ConjunctiveQuery,
    schema: &Schema,
    domain: &Domain,
) -> Result<String, NotSqlExpressible> {
    if query.head.is_empty() {
        return Err(NotSqlExpressible::new(
            "boolean queries have no SELECT list",
        ));
    }
    if query.atoms.is_empty() {
        return Err(NotSqlExpressible::new("queries without atoms have no FROM"));
    }
    if !query.comparisons.is_empty() {
        return Err(NotSqlExpressible::new(
            "comparison predicates (<, <=, !=) are outside the SQL subset",
        ));
    }

    // column text of slot (atom i, position j)
    let col = |i: usize, j: usize| -> Result<String, NotSqlExpressible> {
        let rel = schema.relation(query.atoms[i].relation);
        let attr = &rel.attributes[j];
        if !is_identifier(attr) {
            return Err(NotSqlExpressible::new(format!(
                "attribute `{attr}` is not a bare SQL identifier"
            )));
        }
        Ok(format!("t{i}.{attr}"))
    };

    let quote = |v: Value| -> String { format!("'{}'", domain.name(v).replace('\'', "''")) };

    // first occurrence of each variable / of each constant value
    let mut var_first: Vec<Option<(usize, usize)>> = vec![None; query.num_vars()];
    let mut predicates: Vec<String> = Vec::new();
    let mut const_first: Vec<(Value, (usize, usize))> = Vec::new();
    for (i, atom) in query.atoms.iter().enumerate() {
        for (j, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Var(v) => match var_first[v.index()] {
                    None => var_first[v.index()] = Some((i, j)),
                    Some((fi, fj)) => {
                        predicates.push(format!("{} = {}", col(fi, fj)?, col(i, j)?));
                    }
                },
                Term::Const(c) => {
                    predicates.push(format!("{} = {}", col(i, j)?, quote(*c)));
                    if !const_first.iter().any(|(v, _)| v == c) {
                        const_first.push((*c, (i, j)));
                    }
                }
            }
        }
    }

    let mut select_items = Vec::new();
    for term in &query.head {
        match term {
            Term::Var(v) => {
                let (i, j) = var_first[v.index()].ok_or_else(|| {
                    NotSqlExpressible::new(format!(
                        "head variable `{}` does not occur in the body",
                        query.var_name(*v)
                    ))
                })?;
                select_items.push(col(i, j)?);
            }
            Term::Const(c) => {
                // a head constant is printable only by projecting a body
                // position pinned to that same constant
                let (i, j) = const_first
                    .iter()
                    .find(|(v, _)| v == c)
                    .map(|(_, slot)| *slot)
                    .ok_or_else(|| {
                        NotSqlExpressible::new(format!(
                            "head constant '{}' does not appear in the body",
                            domain.name(*c)
                        ))
                    })?;
                select_items.push(col(i, j)?);
            }
        }
    }

    let mut from_items = Vec::new();
    for (i, atom) in query.atoms.iter().enumerate() {
        let rel = &schema.relation(atom.relation).name;
        if !is_identifier(rel) || is_reserved(rel) {
            return Err(NotSqlExpressible::new(format!(
                "relation `{rel}` is not a bare SQL identifier"
            )));
        }
        from_items.push(format!("{rel} t{i}"));
    }

    let mut out = format!(
        "SELECT {} FROM {}",
        select_items.join(", "),
        from_items.join(", ")
    );
    if !predicates.is_empty() {
        out.push_str(" WHERE ");
        out.push_str(&predicates.join(" AND "));
    }
    Ok(out)
}

/// Structural keywords that cannot appear as bare table names.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select",
        "from",
        "where",
        "join",
        "inner",
        "on",
        "and",
        "or",
        "not",
        "in",
        "as",
        "show",
        "tables",
        "columns",
        "left",
        "right",
        "full",
        "outer",
        "cross",
        "natural",
        "group",
        "order",
        "by",
        "having",
        "limit",
        "offset",
        "union",
        "intersect",
        "except",
        "distinct",
        "between",
        "like",
        "ilike",
        "is",
        "null",
        "exists",
        "case",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query_single;
    use qvsec_cq::{canonical_form, parse_query};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::new())
    }

    fn roundtrip(datalog: &str) {
        let (schema, mut domain) = setup();
        let q = parse_query(datalog, &schema, &mut domain).unwrap();
        let sql = sql_text(&q, &schema, &domain).unwrap();
        let back = compile_query_single(&sql, &schema, &mut domain, "RT")
            .unwrap_or_else(|e| panic!("printed SQL `{sql}` failed to compile: {e}"));
        assert_eq!(
            canonical_form(&q),
            canonical_form(&back),
            "round trip diverged for {datalog} via `{sql}`"
        );
    }

    #[test]
    fn projections_joins_constants_round_trip() {
        roundtrip("V(n, d) :- Employee(n, d, p)");
        roundtrip("V(n) :- Employee(n, 'HR', p)");
        roundtrip("V(a) :- R(a, b), R(b, c)");
        roundtrip("V(x, x) :- R(x, x)");
        roundtrip("V(n, d) :- Employee(n, d, p), Employee(n, d, q)");
        roundtrip("V(n, 'HR') :- Employee(n, 'HR', p)");
    }

    #[test]
    fn quotes_in_constants_are_escaped() {
        let (schema, mut domain) = setup();
        let mut q = parse_query("V(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let tricky = domain.add("it's");
        q.atoms[0].terms[1] = qvsec_cq::Term::Const(tricky);
        let sql = sql_text(&q, &schema, &domain).unwrap();
        assert!(sql.contains("'it''s'"));
        let back = compile_query_single(&sql, &schema, &mut domain, "RT").unwrap();
        assert_eq!(canonical_form(&q), canonical_form(&back));
    }

    #[test]
    fn out_of_subset_queries_are_refused() {
        let (schema, mut domain) = setup();
        let boolean = parse_query("B() :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(sql_text(&boolean, &schema, &domain).is_err());
        let ordered = parse_query("O(x) :- R(x, y), x < y", &schema, &mut domain).unwrap();
        assert!(sql_text(&ordered, &schema, &domain).is_err());
        let mut headless_const =
            parse_query("H(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let stray = domain.add("stray");
        headless_const.head.push(qvsec_cq::Term::Const(stray));
        assert!(sql_text(&headless_const, &schema, &domain).is_err());
    }

    #[test]
    fn display_wrapper_renders() {
        let (schema, mut domain) = setup();
        let q = parse_query("V(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let d = sql_display(&q, &schema, &domain).unwrap();
        assert_eq!(d.to_string(), "SELECT t0.name FROM Employee t0");
        assert_eq!(d.as_str(), "SELECT t0.name FROM Employee t0");
    }
}
