//! Structured rejection diagnostics.
//!
//! Every way a statement can fall outside the safe subset has a closed
//! [`RejectReason`] and a byte [`Span`] into the original SQL text. Nothing
//! is ever silently narrowed: either the statement compiles exactly, or the
//! caller gets a machine-readable reason plus the offending source range.

use serde::Serialize;
use std::fmt;

/// A half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at`.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The source fragment this span covers (empty for point spans or spans
    /// out of range).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The closed set of reasons a statement is rejected. Wire code in
/// parentheses (see [`RejectReason::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    /// Malformed input: lexing or grammar error (`syntax`).
    Syntax,
    /// `SELECT *` — projections must name their columns (`select_star`).
    SelectStar,
    /// `DISTINCT`, `GROUP BY`, `ORDER BY`, `HAVING`, `LIMIT`, `OFFSET` or
    /// `UNION` (`unsupported_clause`).
    UnsupportedClause,
    /// Outer / cross join forms; only inner `JOIN ... ON` and comma joins
    /// are in the subset (`unsupported_join`).
    UnsupportedJoin,
    /// `OR` — only conjunctions are auditable (`unsupported_or`).
    UnsupportedOr,
    /// `NOT` in any position (`unsupported_not`).
    UnsupportedNot,
    /// A comparison operator outside `=` / `IN`: `<`, `<=`, `>`, `>=`,
    /// `!=`, `<>`, `LIKE`, `ILIKE`, `IS [NOT] NULL`
    /// (`unsupported_comparison`).
    UnsupportedComparison,
    /// `BETWEEN` ranges (`unsupported_range`).
    UnsupportedRange,
    /// Aggregate functions — `COUNT`, `SUM`, `AVG`, ... (`unsupported_aggregate`).
    UnsupportedAggregate,
    /// A nested `SELECT` anywhere (`unsupported_subquery`).
    UnsupportedSubquery,
    /// Table (or alias) not present in the schema (`unknown_table`).
    UnknownTable,
    /// Column not present in the referenced table(s) (`unknown_column`).
    UnknownColumn,
    /// Unqualified column resolvable against more than one FROM entry
    /// (`ambiguous_column`).
    AmbiguousColumn,
    /// Two FROM entries sharing one alias (`duplicate_alias`).
    DuplicateAlias,
    /// `IN ()` with no elements (`empty_in_list`).
    EmptyInList,
    /// The cartesian product of `IN`-list disjuncts exceeds the expansion
    /// cap (`in_list_too_large`).
    InListTooLarge,
    /// Equality constraints force one column to two different constants
    /// (`contradictory_constants`).
    ContradictoryConstants,
    /// The statement expands to several conjunctive queries but the call
    /// site requires exactly one (`multiple_queries`).
    MultipleQueries,
}

impl RejectReason {
    /// The stable snake_case wire code for this reason.
    pub fn code(self) -> &'static str {
        match self {
            RejectReason::Syntax => "syntax",
            RejectReason::SelectStar => "select_star",
            RejectReason::UnsupportedClause => "unsupported_clause",
            RejectReason::UnsupportedJoin => "unsupported_join",
            RejectReason::UnsupportedOr => "unsupported_or",
            RejectReason::UnsupportedNot => "unsupported_not",
            RejectReason::UnsupportedComparison => "unsupported_comparison",
            RejectReason::UnsupportedRange => "unsupported_range",
            RejectReason::UnsupportedAggregate => "unsupported_aggregate",
            RejectReason::UnsupportedSubquery => "unsupported_subquery",
            RejectReason::UnknownTable => "unknown_table",
            RejectReason::UnknownColumn => "unknown_column",
            RejectReason::AmbiguousColumn => "ambiguous_column",
            RejectReason::DuplicateAlias => "duplicate_alias",
            RejectReason::EmptyInList => "empty_in_list",
            RejectReason::InListTooLarge => "in_list_too_large",
            RejectReason::ContradictoryConstants => "contradictory_constants",
            RejectReason::MultipleQueries => "multiple_queries",
        }
    }

    /// Every reason, in documentation order.
    pub fn all() -> &'static [RejectReason] {
        &[
            RejectReason::Syntax,
            RejectReason::SelectStar,
            RejectReason::UnsupportedClause,
            RejectReason::UnsupportedJoin,
            RejectReason::UnsupportedOr,
            RejectReason::UnsupportedNot,
            RejectReason::UnsupportedComparison,
            RejectReason::UnsupportedRange,
            RejectReason::UnsupportedAggregate,
            RejectReason::UnsupportedSubquery,
            RejectReason::UnknownTable,
            RejectReason::UnknownColumn,
            RejectReason::AmbiguousColumn,
            RejectReason::DuplicateAlias,
            RejectReason::EmptyInList,
            RejectReason::InListTooLarge,
            RejectReason::ContradictoryConstants,
            RejectReason::MultipleQueries,
        ]
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A rejection: why, where, and a human-readable account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SqlError {
    /// The structured reason code.
    pub reason: RejectReason,
    /// Byte range of the offending construct in the source text.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl SqlError {
    /// Creates an error.
    pub fn new(reason: RejectReason, span: Span, message: impl Into<String>) -> Self {
        SqlError {
            reason,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at bytes {}: {}",
            self.reason.code(),
            self.span,
            self.message
        )
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_snake_case() {
        let all = RejectReason::all();
        for (i, a) in all.iter().enumerate() {
            assert!(a.code().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code());
            }
        }
    }

    #[test]
    fn span_slices_source() {
        let s = Span::new(7, 11);
        assert_eq!(s.slice("SELECT name FROM t"), "name");
        assert_eq!(Span::point(3).slice("abcdef"), "");
        assert_eq!(Span::new(90, 95).slice("short"), "");
    }

    #[test]
    fn error_display_mentions_code_and_span() {
        let e = SqlError::new(RejectReason::UnsupportedOr, Span::new(2, 4), "OR is out");
        let s = e.to_string();
        assert!(s.contains("unsupported_or"));
        assert!(s.contains("2..4"));
    }
}
