//! Compilation of parsed `SELECT` statements to conjunctive queries.
//!
//! The translation is *unification-based* so that a SQL query and its
//! hand-written datalog equivalent produce literally the same AST shape
//! (and therefore the same [`qvsec_cq::canonical_form`], memo keys and
//! cache entries):
//!
//! * every (FROM-entry, attribute) position is a *slot*;
//! * `a.x = b.y` merges the two slots' classes (union-find);
//! * `a.x = 'lit'` binds the class to a constant, which is substituted
//!   **inline** into the atom — exactly where a hand-written
//!   `Employee(n, 'HR', p)` puts it. Compiled queries never carry
//!   comparison predicates;
//! * `a.x IN ('p', 'q')` expands to a union of conjunctive queries, one
//!   per choice (the cartesian product over all IN-lists, capped at
//!   [`MAX_IN_EXPANSION`]). Combinations contradicting an equality are
//!   dropped — that is exact SQL semantics, not narrowing — and if *every*
//!   combination is contradictory the statement is rejected.

use crate::error::{RejectReason, Span, SqlError};
use crate::parser::{ColumnRef, Literal, Operand, Predicate, SelectStmt, Statement};
use qvsec_cq::{Atom, ConjunctiveQuery, Term};
use qvsec_data::{Domain, RelationId, Schema, Value};

/// Cap on the number of conjunctive queries an `IN`-list expansion may
/// produce (the cartesian product over all IN-lists in one statement).
pub const MAX_IN_EXPANSION: usize = 64;

/// Compiles a statement that must be a `SELECT`, returning the union of
/// conjunctive queries it denotes (singleton unless `IN`-lists expand).
///
/// Constants are interned into `domain` by name; callers enforcing a closed
/// constant vocabulary should check the domain did not grow.
pub fn compile_query(
    source: &str,
    schema: &Schema,
    domain: &mut Domain,
    name: &str,
) -> Result<Vec<ConjunctiveQuery>, SqlError> {
    match crate::parser::parse_statement(source)? {
        Statement::Select(stmt) => compile_select(&stmt, schema, domain, name, source),
        Statement::ShowTables | Statement::ShowColumns { .. } | Statement::ShowCanonical(_) => {
            Err(SqlError::new(
                RejectReason::Syntax,
                Span::new(0, source.len()),
                "expected a SELECT statement, found an introspection command",
            ))
        }
    }
}

/// Like [`compile_query`] but requires the statement to denote exactly one
/// conjunctive query (no multi-element `IN`-list expansion).
pub fn compile_query_single(
    source: &str,
    schema: &Schema,
    domain: &mut Domain,
    name: &str,
) -> Result<ConjunctiveQuery, SqlError> {
    let mut queries = compile_query(source, schema, domain, name)?;
    if queries.len() != 1 {
        return Err(SqlError::new(
            RejectReason::MultipleQueries,
            Span::new(0, source.len()),
            format!(
                "statement expands to {} conjunctive queries (via IN-lists) \
                 but this context requires exactly one",
                queries.len()
            ),
        ));
    }
    Ok(queries.pop().expect("checked length"))
}

/// A resolved slot: `(FROM-entry index, attribute position)` flattened.
type Slot = usize;

struct Resolver<'a> {
    schema: &'a Schema,
    /// Per FROM entry: relation, alias (lower-cased), first slot offset.
    tables: Vec<(RelationId, String, usize)>,
    total_slots: usize,
}

impl<'a> Resolver<'a> {
    fn build(stmt: &SelectStmt, schema: &'a Schema) -> Result<Self, SqlError> {
        let mut tables = Vec::new();
        let mut total = 0usize;
        for t in &stmt.tables {
            let rel = lookup_relation(schema, &t.table, t.span)?;
            let alias = t
                .alias
                .clone()
                .unwrap_or_else(|| t.table.clone())
                .to_ascii_lowercase();
            if tables.iter().any(|(_, a, _)| *a == alias) {
                return Err(SqlError::new(
                    RejectReason::DuplicateAlias,
                    t.span,
                    format!(
                        "alias `{}` is already bound to an earlier FROM entry; \
                         give each occurrence a distinct alias (`{} AS e2`)",
                        alias, t.table
                    ),
                ));
            }
            tables.push((rel, alias, total));
            total += schema.arity(rel);
        }
        Ok(Resolver {
            schema,
            tables,
            total_slots: total,
        })
    }

    /// Resolves a column reference to its slot.
    fn resolve(&self, col: &ColumnRef) -> Result<Slot, SqlError> {
        match &col.table {
            Some(qual) => {
                let lower = qual.to_ascii_lowercase();
                let Some((rel, _, base)) = self.tables.iter().find(|(_, a, _)| *a == lower) else {
                    return Err(SqlError::new(
                        RejectReason::UnknownTable,
                        col.span,
                        format!(
                            "`{}` does not name a FROM entry; in scope: {}",
                            qual,
                            self.alias_list()
                        ),
                    ));
                };
                let pos = attribute_position(self.schema, *rel, &col.column).ok_or_else(|| {
                    SqlError::new(
                        RejectReason::UnknownColumn,
                        col.span,
                        format!(
                            "`{}` has no column `{}`; columns: {}",
                            self.schema.relation(*rel).name,
                            col.column,
                            self.schema.relation(*rel).attributes.join(", ")
                        ),
                    )
                })?;
                Ok(base + pos)
            }
            None => {
                let mut hits = Vec::new();
                for (rel, alias, base) in &self.tables {
                    if let Some(pos) = attribute_position(self.schema, *rel, &col.column) {
                        hits.push((alias.clone(), base + pos));
                    }
                }
                match hits.len() {
                    0 => Err(SqlError::new(
                        RejectReason::UnknownColumn,
                        col.span,
                        format!(
                            "no FROM entry has a column `{}` (tables in scope: {})",
                            col.column,
                            self.alias_list()
                        ),
                    )),
                    1 => Ok(hits[0].1),
                    _ => Err(SqlError::new(
                        RejectReason::AmbiguousColumn,
                        col.span,
                        format!(
                            "column `{}` matches several FROM entries ({}); qualify it",
                            col.column,
                            hits.iter()
                                .map(|(a, _)| a.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )),
                }
            }
        }
    }

    fn alias_list(&self) -> String {
        self.tables
            .iter()
            .map(|(_, a, _)| a.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Case-sensitive lookup with a case-insensitive fallback (accepted only
/// when unambiguous), so analysts can type `employee` for `Employee`.
fn lookup_relation(schema: &Schema, name: &str, span: Span) -> Result<RelationId, SqlError> {
    if let Some(id) = schema.relation_by_name(name) {
        return Ok(id);
    }
    let ci: Vec<RelationId> = schema
        .relation_ids()
        .filter(|&id| schema.relation(id).name.eq_ignore_ascii_case(name))
        .collect();
    if ci.len() == 1 {
        return Ok(ci[0]);
    }
    let known: Vec<&str> = schema
        .relation_ids()
        .map(|id| schema.relation(id).name.as_str())
        .collect::<Vec<_>>();
    Err(SqlError::new(
        RejectReason::UnknownTable,
        span,
        format!(
            "unknown table `{}`; known tables: {}",
            name,
            known.join(", ")
        ),
    ))
}

/// Exact attribute match first, then a unique case-insensitive match.
fn attribute_position(schema: &Schema, rel: RelationId, column: &str) -> Option<usize> {
    let attrs = &schema.relation(rel).attributes;
    if let Some(p) = attrs.iter().position(|a| a == column) {
        return Some(p);
    }
    let ci: Vec<usize> = attrs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.eq_ignore_ascii_case(column))
        .map(|(i, _)| i)
        .collect();
    if ci.len() == 1 {
        Some(ci[0])
    } else {
        None
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // the smaller root wins, keeping class representatives stable in
        // slot order (first occurrence)
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// Compiles a parsed `SELECT` to its union of conjunctive queries.
///
/// `name` becomes the (cosmetic) query name; when `IN`-lists expand to
/// several disjuncts they are named `name_1`, `name_2`, ....
pub fn compile_select(
    stmt: &SelectStmt,
    schema: &Schema,
    domain: &mut Domain,
    name: &str,
    source: &str,
) -> Result<Vec<ConjunctiveQuery>, SqlError> {
    let resolver = Resolver::build(stmt, schema)?;
    let mut uf = UnionFind::new(resolver.total_slots);

    // Pass A: merge classes for every column = column equality.
    for pred in &stmt.predicates {
        if let Predicate::Eq {
            lhs: Operand::Column(l),
            rhs: Operand::Column(r),
            ..
        } = pred
        {
            let (a, b) = (resolver.resolve(l)?, resolver.resolve(r)?);
            uf.union(a, b);
        }
    }

    // Pass B: bind constants per class (column = literal, literal = literal,
    // single-element IN) and collect multi-element IN choices.
    let mut bound: Vec<Option<Value>> = vec![None; resolver.total_slots];
    let bind = |uf: &mut UnionFind,
                bound: &mut Vec<Option<Value>>,
                domain: &mut Domain,
                slot: Slot,
                lit: &Literal,
                span: Span|
     -> Result<(), SqlError> {
        let value = domain.add(&lit.text);
        let root = uf.find(slot);
        match bound[root] {
            None => {
                bound[root] = Some(value);
                Ok(())
            }
            Some(prev) if prev == value => Ok(()),
            Some(prev) => Err(SqlError::new(
                RejectReason::ContradictoryConstants,
                span,
                format!(
                    "this column is already constrained to '{}' elsewhere in \
                     the statement; '{}' can never match",
                    domain.name(prev),
                    lit.text
                ),
            )),
        }
    };
    // (class root, ordered choices, span of the IN predicate)
    let mut choices: Vec<(Slot, Vec<Value>, Span)> = Vec::new();
    for pred in &stmt.predicates {
        match pred {
            Predicate::Eq {
                lhs: Operand::Column(_),
                rhs: Operand::Column(_),
                ..
            } => {}
            Predicate::Eq {
                lhs: Operand::Column(c),
                rhs: Operand::Literal(l),
                span,
            }
            | Predicate::Eq {
                lhs: Operand::Literal(l),
                rhs: Operand::Column(c),
                span,
            } => {
                let slot = resolver.resolve(c)?;
                bind(&mut uf, &mut bound, domain, slot, l, *span)?;
            }
            Predicate::Eq {
                lhs: Operand::Literal(a),
                rhs: Operand::Literal(b),
                span,
            } => {
                // constant-folding a tautology is fine; a contradiction is
                // surfaced, never silently produced as the empty query
                if domain.add(&a.text) != domain.add(&b.text) {
                    return Err(SqlError::new(
                        RejectReason::ContradictoryConstants,
                        *span,
                        format!("'{}' = '{}' can never hold", a.text, b.text),
                    ));
                }
            }
            Predicate::In { column, list, span } => {
                let slot = resolver.resolve(column)?;
                if list.len() == 1 {
                    bind(&mut uf, &mut bound, domain, slot, &list[0], *span)?;
                } else {
                    let mut vals: Vec<Value> = Vec::new();
                    for lit in list {
                        let v = domain.add(&lit.text);
                        // duplicate disjuncts would silently change the
                        // expansion count; dedup keeps SQL set semantics
                        if !vals.contains(&v) {
                            vals.push(v);
                        }
                    }
                    choices.push((uf.find(slot), vals, *span));
                }
            }
        }
    }

    // Expansion size check before materializing anything.
    let mut expansion = 1usize;
    for (_, vals, span) in &choices {
        expansion = match expansion.checked_mul(vals.len()) {
            Some(n) if n <= MAX_IN_EXPANSION => n,
            _ => {
                return Err(SqlError::new(
                    RejectReason::InListTooLarge,
                    *span,
                    format!(
                        "IN-lists multiply out to more than {MAX_IN_EXPANSION} \
                         conjunctive queries"
                    ),
                ))
            }
        };
    }

    // Materialize each combination (odometer order: later IN-lists vary
    // fastest, matching nested-loop reading order).
    let mut queries = Vec::new();
    let mut combo = vec![0usize; choices.len()];
    loop {
        let mut assignment = bound.clone();
        let mut contradictory = false;
        for (i, (root, vals, _)) in choices.iter().enumerate() {
            let v = vals[combo[i]];
            match assignment[*root] {
                None => assignment[*root] = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => {
                    contradictory = true;
                    break;
                }
            }
        }
        if !contradictory {
            queries.push(assignment);
        }
        // advance the odometer
        let mut i = choices.len();
        loop {
            if i == 0 {
                break;
            }
            i -= 1;
            combo[i] += 1;
            if combo[i] < choices[i].1.len() {
                break;
            }
            combo[i] = 0;
            if i == 0 {
                i = usize::MAX;
                break;
            }
        }
        if choices.is_empty() || i == usize::MAX {
            break;
        }
    }

    if queries.is_empty() {
        let span = choices
            .first()
            .map(|(_, _, s)| *s)
            .unwrap_or_else(|| Span::new(0, source.len()));
        return Err(SqlError::new(
            RejectReason::ContradictoryConstants,
            span,
            "every IN combination contradicts an equality constraint; \
             the statement can never match",
        ));
    }

    let multi = queries.len() > 1;
    let built: Result<Vec<ConjunctiveQuery>, SqlError> = queries
        .into_iter()
        .enumerate()
        .map(|(i, assignment)| {
            let qname = if multi {
                format!("{}_{}", name, i + 1)
            } else {
                name.to_string()
            };
            build_query(&qname, stmt, schema, &resolver, &mut uf, &assignment)
        })
        .collect();
    built
}

/// Builds one conjunctive query from a complete class→constant assignment.
fn build_query(
    name: &str,
    stmt: &SelectStmt,
    schema: &Schema,
    resolver: &Resolver<'_>,
    uf: &mut UnionFind,
    assignment: &[Option<Value>],
) -> Result<ConjunctiveQuery, SqlError> {
    let mut q = ConjunctiveQuery::new(name);

    // Assign variables to constant-free classes, in slot order, named after
    // the first column of the class (uniquified — `add_var` interns by name,
    // so collisions would incorrectly merge classes).
    let mut class_term: Vec<Option<Term>> = vec![None; resolver.total_slots];
    let mut used_names: Vec<String> = Vec::new();
    for (rel, _, base) in &resolver.tables {
        for pos in 0..schema.arity(*rel) {
            let slot = base + pos;
            let root = uf.find(slot);
            if class_term[root].is_some() {
                continue;
            }
            let term = match assignment[root] {
                Some(value) => Term::Const(value),
                None => {
                    let attr = &schema.relation(*rel).attributes[pos];
                    let mut candidate = attr.clone();
                    let mut k = 1usize;
                    while used_names.iter().any(|n| n == &candidate) {
                        k += 1;
                        candidate = format!("{attr}_{k}");
                    }
                    used_names.push(candidate.clone());
                    Term::Var(q.add_var(&candidate))
                }
            };
            class_term[root] = Some(term);
        }
    }

    // Atoms in FROM order, constants substituted inline.
    for (rel, _, base) in &resolver.tables {
        let terms: Vec<Term> = (0..schema.arity(*rel))
            .map(|pos| class_term[uf.find(base + pos)].expect("every class is materialized"))
            .collect();
        q.atoms.push(Atom::new(*rel, terms));
    }

    // Head in projection order.
    for item in &stmt.items {
        let slot = resolver.resolve(item)?;
        q.head
            .push(class_term[uf.find(slot)].expect("every class is materialized"));
    }

    debug_assert!(q.validate().is_ok(), "compiled queries are always safe");
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::{canonical_form, parse_query};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::new())
    }

    #[test]
    fn simple_projection_matches_hand_written_datalog() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let sql = compile_query_single(
            "SELECT name, department FROM Employee",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&sql));
    }

    #[test]
    fn constants_are_substituted_inline_not_as_comparisons() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let sql = compile_query_single(
            "SELECT name FROM Employee WHERE department = 'HR'",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert!(sql.comparisons.is_empty());
        assert_eq!(canonical_form(&hand), canonical_form(&sql));
    }

    #[test]
    fn joins_unify_across_atoms() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(a) :- R(a, b), R(b, c)", &schema, &mut domain).unwrap();
        let sql = compile_query_single(
            "SELECT s.x FROM R s JOIN R t ON s.y = t.x",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&sql));

        let comma = compile_query_single(
            "SELECT s.x FROM R s, R t WHERE s.y = t.x",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&comma));
    }

    #[test]
    fn head_can_be_a_bound_constant() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(n, 'HR') :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let sql = compile_query_single(
            "SELECT name, department FROM Employee WHERE department = 'HR'",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&sql));
    }

    #[test]
    fn in_lists_expand_to_a_union() {
        let (schema, mut domain) = setup();
        let qs = compile_query(
            "SELECT name FROM Employee WHERE department IN ('HR', 'Mgmt')",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].name, "V_1");
        let hr = parse_query("A(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let mgmt = parse_query("B(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        assert_eq!(canonical_form(&qs[0]), canonical_form(&hr));
        assert_eq!(canonical_form(&qs[1]), canonical_form(&mgmt));
    }

    #[test]
    fn contradictory_in_combinations_are_dropped_exactly() {
        let (schema, mut domain) = setup();
        let qs = compile_query(
            "SELECT name FROM Employee WHERE department = 'HR' \
             AND department IN ('HR', 'Mgmt')",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap();
        assert_eq!(qs.len(), 1, "only the consistent combination survives");
        let hand = parse_query("V(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        assert_eq!(canonical_form(&qs[0]), canonical_form(&hand));
    }

    #[test]
    fn fully_contradictory_statements_are_rejected() {
        let (schema, mut domain) = setup();
        let e = compile_query(
            "SELECT name FROM Employee WHERE department = 'HR' AND department = 'Mgmt'",
            &schema,
            &mut domain,
            "V",
        )
        .unwrap_err();
        assert_eq!(e.reason, RejectReason::ContradictoryConstants);
    }

    #[test]
    fn resolution_errors() {
        let (schema, mut domain) = setup();
        let cases = [
            ("SELECT name FROM Nope", RejectReason::UnknownTable),
            ("SELECT salary FROM Employee", RejectReason::UnknownColumn),
            ("SELECT z.name FROM Employee", RejectReason::UnknownTable),
            ("SELECT zz FROM Employee, R", RejectReason::UnknownColumn),
            (
                "SELECT name FROM Employee, Employee",
                RejectReason::DuplicateAlias,
            ),
            (
                "SELECT name FROM Employee a, Employee b WHERE name = 'x'",
                RejectReason::AmbiguousColumn,
            ),
        ];
        for (src, reason) in cases {
            let e = compile_query(src, &schema, &mut domain, "V").unwrap_err();
            assert_eq!(e.reason, reason, "for {src}: {e}");
        }
    }

    #[test]
    fn case_insensitive_table_and_column_fallback() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let sql =
            compile_query_single("select NAME from employee", &schema, &mut domain, "V").unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&sql));
    }

    #[test]
    fn expansion_cap_is_enforced() {
        let (schema, mut domain) = setup();
        let lits: Vec<String> = (0..9).map(|i| format!("'c{i}'")).collect();
        let list = lits.join(", ");
        let src = format!("SELECT x FROM R WHERE x IN ({list}) AND y IN ({list})");
        let e = compile_query(&src, &schema, &mut domain, "V").unwrap_err();
        assert_eq!(e.reason, RejectReason::InListTooLarge);
    }

    #[test]
    fn single_query_contexts_reject_expansion() {
        let (schema, mut domain) = setup();
        let e = compile_query_single(
            "SELECT x FROM R WHERE y IN ('a', 'b')",
            &schema,
            &mut domain,
            "S",
        )
        .unwrap_err();
        assert_eq!(e.reason, RejectReason::MultipleQueries);
    }

    #[test]
    fn repeated_head_columns_and_self_equality() {
        let (schema, mut domain) = setup();
        let hand = parse_query("V(x, x) :- R(x, x)", &schema, &mut domain).unwrap();
        let sql = compile_query_single("SELECT x, y FROM R WHERE x = y", &schema, &mut domain, "V")
            .unwrap();
        assert_eq!(canonical_form(&hand), canonical_form(&sql));
    }
}
