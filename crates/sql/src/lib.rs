//! # qvsec-sql — safe-SQL front end
//!
//! A hand-rolled lexer + recursive-descent parser for a small, fully
//! auditable SQL subset, compiled down to the workspace's conjunctive
//! query AST ([`qvsec_cq::ConjunctiveQuery`]):
//!
//! ```text
//! SELECT col, ...
//! FROM table [AS alias] [, table ...] [JOIN table ON col = col [AND ...]]
//! [WHERE col = col | col = 'lit' | col IN ('a', 'b') [AND ...]]
//! ```
//!
//! plus the introspection commands `SHOW TABLES` and
//! `SHOW COLUMNS FROM table`.
//!
//! ## Design contract
//!
//! * **Canonical identity.** Compilation is unification-based: equalities
//!   merge column classes and constants are substituted inline into atom
//!   positions, so a SQL query and its hand-written datalog equivalent
//!   yield the same [`qvsec_cq::canonical_form`] — they share memo, cache
//!   and artifact entries byte-identically. Verified by a property test
//!   that prints random supported CQs to SQL ([`sql_display`]) and
//!   compiles them back.
//! * **Reject, never narrow.** Every construct outside the subset (OR,
//!   NOT, subqueries, aggregates, range comparisons, outer joins, ...)
//!   fails with a closed-enum [`RejectReason`] and a byte [`Span`] into
//!   the source — the statement is never silently approximated.
//! * **IN-lists are unions.** `dept IN ('HR', 'Mgmt')` expands to one
//!   conjunctive query per choice (capped at
//!   [`compile::MAX_IN_EXPANSION`]); contexts requiring a single query
//!   reject the expansion explicitly.
//!
//! ```
//! use qvsec_data::{Domain, Schema};
//! use qvsec_cq::{canonical_form, parse_query};
//! use qvsec_sql::compile_query_single;
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", &["name", "department", "phone"]);
//! let mut domain = Domain::new();
//!
//! let hand = parse_query("V(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
//! let sql = compile_query_single(
//!     "SELECT name FROM Employee WHERE department = 'HR'",
//!     &schema,
//!     &mut domain,
//!     "V",
//! )
//! .unwrap();
//! assert_eq!(canonical_form(&hand), canonical_form(&sql));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod print;

pub use compile::{compile_query, compile_query_single, compile_select, MAX_IN_EXPANSION};
pub use error::{RejectReason, Span, SqlError};
pub use parser::{parse_statement, SelectStmt, Statement};
pub use print::{sql_display, sql_text, NotSqlExpressible, SqlDisplay};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
