//! Hand-rolled lexer for the safe SQL subset.
//!
//! Produces a flat token stream with byte spans. Keywords are *not*
//! distinguished here — identifiers keep their source spelling and the
//! parser matches them case-insensitively, so `select`, `SELECT` and
//! `Select` are all accepted while schema identifiers stay case-preserving.

use crate::error::{RejectReason, Span, SqlError};

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Bare identifier (possibly a keyword — the parser decides).
    Ident(String),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    Str(String),
    /// Unsigned integer literal (digits, kept as text).
    Number(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=` or `<>`
    Ne,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable rendering for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(s) => format!("string literal '{s}'"),
            TokenKind::Number(s) => format!("number `{s}`"),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token plus its source byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// Its byte range in the source.
    pub span: Span,
}

/// Whether `s` is a lexically valid bare identifier.
pub fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Tokenizes `source`, returning the stream terminated by an
/// [`TokenKind::Eof`] token.
pub fn lex(source: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                tokens.push(tok(TokenKind::Comma, i, i + 1));
                i += 1;
            }
            b'.' => {
                tokens.push(tok(TokenKind::Dot, i, i + 1));
                i += 1;
            }
            b'(' => {
                tokens.push(tok(TokenKind::LParen, i, i + 1));
                i += 1;
            }
            b')' => {
                tokens.push(tok(TokenKind::RParen, i, i + 1));
                i += 1;
            }
            b';' => {
                tokens.push(tok(TokenKind::Semi, i, i + 1));
                i += 1;
            }
            b'=' => {
                tokens.push(tok(TokenKind::Eq, i, i + 1));
                i += 1;
            }
            b'*' => {
                tokens.push(tok(TokenKind::Star, i, i + 1));
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(TokenKind::Le, i, i + 2));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(tok(TokenKind::Ne, i, i + 2));
                    i += 2;
                } else {
                    tokens.push(tok(TokenKind::Lt, i, i + 1));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(TokenKind::Ge, i, i + 2));
                    i += 2;
                } else {
                    tokens.push(tok(TokenKind::Gt, i, i + 1));
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(tok(TokenKind::Ne, i, i + 2));
                    i += 2;
                } else {
                    return Err(SqlError::new(
                        RejectReason::Syntax,
                        Span::new(i, i + 1),
                        "stray `!` (did you mean `!=`?)",
                    ));
                }
            }
            b'\'' => {
                let (lit, end) = lex_string(source, i)?;
                tokens.push(tok(TokenKind::Str(lit), i, end));
                i = end;
            }
            b'"' => {
                return Err(SqlError::new(
                    RejectReason::Syntax,
                    Span::new(i, i + 1),
                    "double-quoted identifiers are not supported; use bare \
                     identifiers and single-quoted string literals",
                ));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && (bytes[i] == b'.' || bytes[i].is_ascii_alphabetic()) {
                    return Err(SqlError::new(
                        RejectReason::Syntax,
                        Span::new(start, i + 1),
                        "only unsigned integer literals are supported",
                    ));
                }
                tokens.push(tok(
                    TokenKind::Number(source[start..i].to_string()),
                    start,
                    i,
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(tok(
                    TokenKind::Ident(source[start..i].to_string()),
                    start,
                    i,
                ));
            }
            _ => {
                // step over a full UTF-8 scalar so the span stays on a char
                // boundary
                let ch_len = source[i..].chars().next().map_or(1, |c| c.len_utf8());
                return Err(SqlError::new(
                    RejectReason::Syntax,
                    Span::new(i, i + ch_len),
                    format!("unexpected character {:?}", &source[i..i + ch_len]),
                ));
            }
        }
    }
    tokens.push(tok(TokenKind::Eof, source.len(), source.len()));
    Ok(tokens)
}

fn tok(kind: TokenKind, start: usize, end: usize) -> Token {
    Token {
        kind,
        span: Span::new(start, end),
    }
}

/// Lexes a single-quoted literal starting at `start` (which must point at
/// the opening quote). `''` escapes a quote. Returns the unescaped content
/// and the byte offset just past the closing quote.
fn lex_string(source: &str, start: usize) -> Result<(String, usize), SqlError> {
    let bytes = source.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch = source[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::new(
        RejectReason::Syntax,
        Span::new(start, source.len()),
        "unterminated string literal",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_simple_select() {
        let ks = kinds("SELECT name FROM Employee WHERE dept = 'HR'");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("name".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("Employee".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("dept".into()),
                TokenKind::Eq,
                TokenKind::Str("HR".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("a = 'xy'").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
        assert_eq!(toks[2].span, Span::new(4, 8));
    }

    #[test]
    fn doubled_quote_escapes() {
        let ks = kinds("'it''s'");
        assert_eq!(ks[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn unterminated_string_is_a_syntax_error() {
        let e = lex("SELECT 'oops").unwrap_err();
        assert_eq!(e.reason, RejectReason::Syntax);
        assert_eq!(e.span, Span::new(7, 12));
    }

    #[test]
    fn comments_and_operators() {
        let ks = kinds("x <= y -- trailing\n<> != < > ;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Le,
                TokenKind::Ident("y".into()),
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_floats_and_double_quotes_and_stray_bytes() {
        assert_eq!(lex("1.5").unwrap_err().reason, RejectReason::Syntax);
        assert_eq!(lex("\"id\"").unwrap_err().reason, RejectReason::Syntax);
        assert_eq!(lex("a ? b").unwrap_err().reason, RejectReason::Syntax);
        // multi-byte characters produce char-aligned spans, not panics
        let e = lex("é").unwrap_err();
        assert_eq!(e.reason, RejectReason::Syntax);
        assert_eq!(e.span, Span::new(0, 2));
    }

    #[test]
    fn identifier_charset() {
        assert!(is_identifier("Employee"));
        assert!(is_identifier("_t0"));
        assert!(!is_identifier("0abc"));
        assert!(!is_identifier(""));
        assert!(!is_identifier("a-b"));
    }
}
