//! Satellite: the negative corpus.
//!
//! A table of out-of-subset SQL strings, each asserting the exact
//! structured [`RejectReason`] and the source fragment its span covers.
//! A final completeness check proves the corpus exercises every reason in
//! the closed enum, so a new rejection path cannot ship untested.

use qvsec_data::{Domain, Schema};
use qvsec_sql::{compile_query, compile_query_single, RejectReason};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Employee", &["name", "department", "phone"]);
    s.add_relation("Dept", &["id", "floor"]);
    s
}

struct Case {
    sql: &'static str,
    reason: RejectReason,
    /// The exact source fragment the error span must cover.
    span_text: &'static str,
}

const fn case(sql: &'static str, reason: RejectReason, span_text: &'static str) -> Case {
    Case {
        sql,
        reason,
        span_text,
    }
}

fn corpus() -> Vec<Case> {
    use RejectReason::*;
    vec![
        // ---- grammar / lexical ----
        case("SELEC name FROM Employee", Syntax, "SELEC"),
        case("SELECT name FROM Employee WHERE", Syntax, ""),
        case("SELECT 'lit' FROM Employee", Syntax, "'lit'"),
        case(
            "SELECT name FROM Employee WHERE name = 'x' ; trailing",
            Syntax,
            "trailing",
        ),
        // ---- star / clause forms ----
        case("SELECT * FROM Employee", SelectStar, "*"),
        case(
            "SELECT DISTINCT name FROM Employee",
            UnsupportedClause,
            "DISTINCT",
        ),
        case(
            "SELECT name FROM Employee GROUP BY name",
            UnsupportedClause,
            "GROUP",
        ),
        case(
            "SELECT name FROM Employee ORDER BY name",
            UnsupportedClause,
            "ORDER",
        ),
        case(
            "SELECT name FROM Employee LIMIT 3",
            UnsupportedClause,
            "LIMIT",
        ),
        case(
            "SELECT name FROM Employee UNION SELECT id FROM Dept",
            UnsupportedClause,
            "UNION",
        ),
        // ---- joins ----
        case(
            "SELECT name FROM Employee LEFT JOIN Dept ON department = id",
            UnsupportedJoin,
            "LEFT",
        ),
        case(
            "SELECT name FROM Employee CROSS JOIN Dept",
            UnsupportedJoin,
            "CROSS",
        ),
        // ---- boolean structure ----
        case(
            "SELECT name FROM Employee WHERE name = 'a' OR name = 'b'",
            UnsupportedOr,
            "OR",
        ),
        case(
            "SELECT name FROM Employee WHERE NOT name = 'a'",
            UnsupportedNot,
            "NOT",
        ),
        case(
            "SELECT name FROM Employee WHERE name NOT IN ('a')",
            UnsupportedNot,
            "NOT",
        ),
        // ---- comparisons outside = / IN ----
        case(
            "SELECT name FROM Employee WHERE phone < '5'",
            UnsupportedComparison,
            "<",
        ),
        case(
            "SELECT name FROM Employee WHERE phone >= '5'",
            UnsupportedComparison,
            ">=",
        ),
        case(
            "SELECT name FROM Employee WHERE phone != '5'",
            UnsupportedComparison,
            "!=",
        ),
        case(
            "SELECT name FROM Employee WHERE phone <> '5'",
            UnsupportedComparison,
            "<>",
        ),
        case(
            "SELECT name FROM Employee WHERE name LIKE 'a%'",
            UnsupportedComparison,
            "LIKE",
        ),
        case(
            "SELECT name FROM Employee WHERE phone IS NULL",
            UnsupportedComparison,
            "IS",
        ),
        case(
            "SELECT name FROM Employee WHERE phone BETWEEN '1' AND '9'",
            UnsupportedRange,
            "BETWEEN",
        ),
        // ---- aggregates ----
        case(
            "SELECT COUNT(name) FROM Employee",
            UnsupportedAggregate,
            "COUNT",
        ),
        case(
            "SELECT name FROM Employee WHERE SUM(phone) = '5'",
            UnsupportedAggregate,
            "SUM",
        ),
        // ---- subqueries ----
        case(
            "SELECT name FROM (SELECT name FROM Employee)",
            UnsupportedSubquery,
            "(",
        ),
        case(
            "SELECT name FROM Employee WHERE department IN (SELECT id FROM Dept)",
            UnsupportedSubquery,
            "SELECT",
        ),
        case(
            "SELECT name FROM Employee WHERE EXISTS (SELECT id FROM Dept)",
            UnsupportedSubquery,
            "EXISTS",
        ),
        // ---- schema resolution ----
        case(
            "SELECT name FROM Payroll",
            RejectReason::UnknownTable,
            "Payroll",
        ),
        case(
            "SELECT e.name FROM Employee",
            RejectReason::UnknownTable,
            "e.name",
        ),
        case(
            "SELECT salary FROM Employee",
            RejectReason::UnknownColumn,
            "salary",
        ),
        case(
            "SELECT Employee.salary FROM Employee",
            RejectReason::UnknownColumn,
            "Employee.salary",
        ),
        case(
            "SELECT name FROM Employee a, Employee b",
            RejectReason::AmbiguousColumn,
            "name",
        ),
        case(
            "SELECT name FROM Employee, Employee",
            RejectReason::DuplicateAlias,
            "Employee",
        ),
        // ---- IN lists ----
        case(
            "SELECT name FROM Employee WHERE name IN ()",
            EmptyInList,
            "()",
        ),
        case(
            "SELECT name FROM Employee WHERE name IN \
             ('a','b','c','d','e','f','g','h','i') AND department IN \
             ('a','b','c','d','e','f','g','h','i')",
            InListTooLarge,
            "department IN",
        ),
        // ---- contradictions ----
        case(
            "SELECT name FROM Employee WHERE department = 'HR' AND department = 'Mgmt'",
            ContradictoryConstants,
            "department = 'Mgmt'",
        ),
        case(
            "SELECT name FROM Employee WHERE department = 'HR' \
             AND department IN ('Mgmt', 'Ops')",
            ContradictoryConstants,
            "department IN ('Mgmt', 'Ops')",
        ),
    ]
}

#[test]
fn every_corpus_entry_is_rejected_with_reason_and_span() {
    let schema = schema();
    for c in corpus() {
        let mut domain = Domain::new();
        let err = compile_query(c.sql, &schema, &mut domain, "Q")
            .expect_err(&format!("`{}` must be rejected", c.sql));
        assert_eq!(
            err.reason, c.reason,
            "`{}` rejected for the wrong reason: {err}",
            c.sql
        );
        let covered = err.span.slice(c.sql);
        assert!(
            covered.starts_with(c.span_text),
            "`{}`: span {} covers `{covered}`, expected it to start with `{}` ({err})",
            c.sql,
            err.span,
            c.span_text
        );
        assert!(
            err.span.end <= c.sql.len() && err.span.start <= err.span.end,
            "`{}`: span {} out of bounds",
            c.sql,
            err.span
        );
        assert!(!err.message.is_empty(), "`{}` has an empty message", c.sql);
    }
}

#[test]
fn multiple_queries_is_reported_by_single_query_contexts() {
    let schema = schema();
    let mut domain = Domain::new();
    let sql = "SELECT name FROM Employee WHERE department IN ('HR', 'Mgmt')";
    let err = compile_query_single(sql, &schema, &mut domain, "S").unwrap_err();
    assert_eq!(err.reason, RejectReason::MultipleQueries);
    assert_eq!(err.span.slice(sql), sql, "span covers the whole statement");
}

#[test]
fn corpus_covers_every_reject_reason() {
    let mut seen: Vec<RejectReason> = corpus().iter().map(|c| c.reason).collect();
    seen.push(RejectReason::MultipleQueries);
    for reason in RejectReason::all() {
        assert!(
            seen.contains(reason),
            "no negative-corpus case exercises {}",
            reason.code()
        );
    }
}

#[test]
fn wire_codes_are_stable() {
    // These strings are part of the NDJSON protocol (`error.detail.reason`);
    // renaming one is a wire-compatibility break.
    let expected = [
        "syntax",
        "select_star",
        "unsupported_clause",
        "unsupported_join",
        "unsupported_or",
        "unsupported_not",
        "unsupported_comparison",
        "unsupported_range",
        "unsupported_aggregate",
        "unsupported_subquery",
        "unknown_table",
        "unknown_column",
        "ambiguous_column",
        "duplicate_alias",
        "empty_in_list",
        "in_list_too_large",
        "contradictory_constants",
        "multiple_queries",
    ];
    let all: Vec<&str> = RejectReason::all().iter().map(|r| r.code()).collect();
    assert_eq!(all, expected);
}
