//! Satellite: CQ → SQL → CQ round-trip property.
//!
//! Random conjunctive queries in the SQL-expressible subset (non-empty
//! head, ≥1 atom, no comparisons, head constants drawn from the body) are
//! pretty-printed to subset SQL and compiled back; the canonical form —
//! the engine's memo/cache key — must not move. This is the property that
//! guarantees a SQL workload and its hand-written datalog twin share
//! crit-set, artifact and report cache entries byte-identically.

use proptest::prelude::*;
use qvsec_cq::{canonical_form, parse_query};
use qvsec_data::{Domain, Schema};
use qvsec_sql::{compile_query_single, sql_text};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Employee", &["name", "department", "phone"]);
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b", "HR", "Mgmt"])
}

/// Generates datalog text for a random SQL-expressible query: the head
/// projects terms of the first atom, so head variables are safe and head
/// constants appear in the body.
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        Just("x0".to_string()),
        Just("x1".to_string()),
        Just("x2".to_string()),
        Just("x3".to_string()),
        Just("'a'".to_string()),
        Just("'HR'".to_string()),
        Just("'Mgmt'".to_string()),
    ];
    let atom = prop_oneof![
        (term.clone(), term.clone()).prop_map(|(a, b)| format!("R({a}, {b})")),
        (term.clone(), term.clone(), term.clone())
            .prop_map(|(a, b, c)| format!("Employee({a}, {b}, {c})")),
    ];
    (proptest::collection::vec(atom, 1..4), 1usize..4).prop_map(|(atoms, head_n)| {
        let first: Vec<String> = atoms[0]
            .split_once('(')
            .expect("atom text")
            .1
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        let head: Vec<String> = (0..head_n)
            .map(|i| first[i % first.len()].clone())
            .collect();
        format!("Q({}) :- {}", head.join(", "), atoms.join(", "))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_sql_compiles_back_to_the_same_canonical_form(text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse_query(&text, &schema, &mut domain)
            .expect("generated datalog parses");
        let sql = sql_text(&q, &schema, &domain)
            .unwrap_or_else(|e| panic!("{text} should be SQL-expressible: {e}"));
        let interned = domain.len();
        let back = compile_query_single(&sql, &schema, &mut domain, "RT")
            .unwrap_or_else(|e| panic!("printed SQL `{sql}` rejected: {e}"));
        prop_assert_eq!(
            canonical_form(&q),
            canonical_form(&back),
            "round trip moved the cache key for {} via `{}`",
            text,
            sql
        );
        prop_assert_eq!(
            domain.len(),
            interned,
            "re-compiling `{}` interned new constants",
            sql
        );
        prop_assert!(back.comparisons.is_empty(), "SQL compilation never emits comparisons");
    }
}

/// The same property through the `IN`-list expansion: the union members
/// must each match their hand-written disjunct.
#[test]
fn in_list_union_members_match_hand_written_disjuncts() {
    let schema = schema();
    let mut domain = domain();
    let qs = qvsec_sql::compile_query(
        "SELECT name FROM Employee WHERE department IN ('HR', 'Mgmt') AND phone = '12'",
        &schema,
        &mut domain,
        "V",
    )
    .unwrap();
    assert_eq!(qs.len(), 2);
    let hand: Vec<_> = ["'HR'", "'Mgmt'"]
        .iter()
        .map(|d| {
            parse_query(
                &format!("V(n) :- Employee(n, {d}, '12')"),
                &schema,
                &mut domain,
            )
            .unwrap()
        })
        .collect();
    for (got, want) in qs.iter().zip(&hand) {
        assert_eq!(canonical_form(got), canonical_form(want));
    }
}
