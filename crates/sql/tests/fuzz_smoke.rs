//! Satellite: parser fuzz smoke.
//!
//! Seeded random byte soup and token soup are pushed through the lexer,
//! parser and compiler for a wall-clock budget
//! (`QVSEC_SQL_FUZZ_MS`, default 300 ms locally; CI sets a longer budget).
//! The only acceptable outcomes are a compiled query or a structured
//! [`qvsec_sql::SqlError`] — any panic fails the test. Seeds are logged so
//! a crashing input is reproducible.

use qvsec_data::{Domain, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Employee", &["name", "department", "phone"]);
    s.add_relation("Dept", &["id", "floor"]);
    s
}

fn budget_ms() -> u64 {
    std::env::var("QVSEC_SQL_FUZZ_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Raw byte soup over a SQL-flavoured alphabet (plus genuinely arbitrary
/// bytes, including multi-byte UTF-8, so span arithmetic is exercised off
/// the ASCII happy path).
fn random_bytes(rng: &mut StdRng) -> String {
    const ALPHABET: &[&str] = &[
        "S",
        "E",
        "L",
        "C",
        "T",
        "a",
        "z",
        "_",
        "0",
        "9",
        " ",
        "\n",
        "\t",
        "'",
        "\"",
        "(",
        ")",
        ",",
        ".",
        ";",
        "=",
        "<",
        ">",
        "!",
        "*",
        "-",
        "é",
        "λ",
        "\u{1F600}",
        "\0",
    ];
    let len = rng.gen_range(0usize..120);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())])
        .collect()
}

/// Token soup: syntactically plausible fragments shuffled together, which
/// reaches much deeper into the parser and compiler than raw bytes.
fn random_tokens(rng: &mut StdRng) -> String {
    const VOCAB: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "JOIN",
        "INNER",
        "ON",
        "AND",
        "OR",
        "NOT",
        "IN",
        "AS",
        "SHOW",
        "TABLES",
        "COLUMNS",
        "DISTINCT",
        "GROUP",
        "BY",
        "ORDER",
        "LIMIT",
        "UNION",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "EXISTS",
        "COUNT",
        "LEFT",
        "Employee",
        "Dept",
        "name",
        "department",
        "phone",
        "id",
        "floor",
        "e",
        "t0",
        "salary",
        "Payroll",
        "'HR'",
        "'Mgmt'",
        "''",
        "'it''s'",
        "42",
        "0",
        ",",
        ".",
        "(",
        ")",
        ";",
        "=",
        "<",
        "<=",
        ">",
        ">=",
        "!=",
        "<>",
        "*",
    ];
    let len = rng.gen_range(1usize..24);
    let mut out = String::new();
    for i in 0..len {
        if i > 0 && rng.gen_range(0u32..8) != 0 {
            out.push(' ');
        }
        out.push_str(VOCAB[rng.gen_range(0usize..VOCAB.len())]);
    }
    out
}

#[test]
fn random_soup_never_panics_and_only_fails_structurally() {
    let schema = schema();
    let seed: u64 = std::env::var("QVSEC_SQL_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x51ee7);
    let mut rng = StdRng::seed_from_u64(seed);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(budget_ms());
    let mut iterations = 0u64;
    let mut compiled = 0u64;
    while std::time::Instant::now() < deadline {
        for _ in 0..256 {
            iterations += 1;
            let input = if iterations.is_multiple_of(2) {
                random_bytes(&mut rng)
            } else {
                random_tokens(&mut rng)
            };
            let mut domain = Domain::with_constants(["HR", "Mgmt"]);
            match qvsec_sql::compile_query(&input, &schema, &mut domain, "F") {
                Ok(queries) => {
                    compiled += 1;
                    assert!(!queries.is_empty(), "Ok must carry queries for {input:?}");
                }
                Err(e) => {
                    // the span must stay inside the input and on char
                    // boundaries — slice() would panic otherwise
                    assert!(e.span.start <= e.span.end, "bad span for {input:?}");
                    assert!(e.span.end <= input.len() || e.span.slice(&input).is_empty());
                    let _ = e.span.slice(&input);
                    assert!(!e.reason.code().is_empty());
                }
            }
            let _ = qvsec_sql::parse_statement(&input);
        }
    }
    assert!(iterations > 0);
    // Not a correctness requirement, but if the token soup never compiles
    // anything the vocabulary has rotted and the fuzz lost its depth.
    eprintln!("fuzz smoke: {iterations} inputs, {compiled} compiled, seed {seed}");
}
