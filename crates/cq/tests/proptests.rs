//! Property-based tests for the conjunctive query engine.
//!
//! Random conjunctive queries over a small binary-relation schema are
//! generated directly as ASTs (via the builder conventions) and checked for
//! the semantic properties the rest of the workspace relies on:
//! monotonicity, printer/parser round-tripping, containment reflexivity, and
//! consistency between evaluation and homomorphism search.

use proptest::prelude::*;
use qvsec_cq::eval::evaluate;
use qvsec_cq::homomorphism::find_homomorphisms;
use qvsec_cq::{contained_in, parse_query, ConjunctiveQuery};
use qvsec_data::{Domain, Instance, Schema, Tuple};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b", "c"])
}

/// Strategy generating the text of a random conjunctive query over R/2 with
/// variables x0..x3 and constants a, b, c.
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        Just("x0".to_string()),
        Just("x1".to_string()),
        Just("x2".to_string()),
        Just("x3".to_string()),
        Just("'a'".to_string()),
        Just("'b'".to_string()),
        Just("'c'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    proptest::collection::vec(atom, 1..4).prop_map(|atoms| {
        // Use the variables of the first atom for the head so the query is safe.
        let body = atoms.join(", ");
        let head_var = atoms[0]
            .trim_start_matches("R(")
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .find(|t| t.starts_with('x'));
        match head_var {
            Some(v) => format!("Q({v}) :- {body}"),
            None => format!("Q() :- {body}"),
        }
    })
}

/// Strategy generating a random instance over R/2 with constants a, b, c.
fn instance_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..3, 0usize..3), 0..6)
}

fn build_instance(pairs: &[(usize, usize)], schema: &Schema, domain: &Domain) -> Instance {
    let r = schema.relation_by_name("R").unwrap();
    let vals: Vec<_> = domain.values().collect();
    Instance::from_tuples(
        pairs
            .iter()
            .map(|&(x, y)| Tuple::new(r, vec![vals[x], vals[y]])),
    )
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query must parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evaluation_is_monotone(text in query_text(),
                              small in instance_strategy(),
                              extra in instance_strategy()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        let small_inst = build_instance(&small, &schema, &domain);
        let mut all = small.clone();
        all.extend(extra);
        let large_inst = build_instance(&all, &schema, &domain);
        let small_ans = evaluate(&q, &small_inst);
        let large_ans = evaluate(&q, &large_inst);
        for a in &small_ans {
            prop_assert!(large_ans.contains(a), "monotonicity violated for {}", text);
        }
    }

    #[test]
    fn printer_parser_round_trip(text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let q1 = parse(&text, &schema, &mut domain);
        let printed = q1.display(&schema, &domain).to_string();
        let q2 = parse(&printed, &schema, &mut domain);
        prop_assert_eq!(&q1.atoms, &q2.atoms);
        prop_assert_eq!(&q1.head, &q2.head);
        prop_assert_eq!(&q1.comparisons, &q2.comparisons);
    }

    #[test]
    fn canonical_form_survives_display_parse_round_trips(text in query_text()) {
        // The canonical form is the engine's crit(Q) cache key: printing a
        // query and re-parsing it (which renames nothing but re-interns
        // variables in a fresh namespace) must land in the same cache slot.
        let schema = schema();
        let mut domain = domain();
        let q1 = parse(&text, &schema, &mut domain);
        let printed = q1.display(&schema, &domain).to_string();
        let q2 = parse(&printed, &schema, &mut domain);
        prop_assert_eq!(qvsec_cq::canonical_form(&q1), qvsec_cq::canonical_form(&q2));
    }

    #[test]
    fn canonical_form_is_invariant_under_variable_renaming(text in query_text()) {
        // Rewrite the query text with systematically different variable
        // names and a different cosmetic head name; the canonical form must
        // not move.
        let schema = schema();
        let mut domain = domain();
        let q1 = parse(&text, &schema, &mut domain);
        let renamed_text = text
            .replace("x0", "u7").replace("x1", "u5")
            .replace("x2", "u9").replace("x3", "u2")
            .replacen('Q', "Zed", 1);
        let q2 = parse(&renamed_text, &schema, &mut domain);
        prop_assert_eq!(qvsec_cq::canonical_form(&q1), qvsec_cq::canonical_form(&q2));
    }

    #[test]
    fn distinct_structures_get_distinct_canonical_forms(t1 in query_text(), t2 in query_text()) {
        // Soundness direction: equal canonical forms must describe the same
        // query up to variable naming — check the consequence that both
        // queries evaluate identically on every instance we can build here.
        let schema = schema();
        let mut domain = domain();
        let q1 = parse(&t1, &schema, &mut domain);
        let q2 = parse(&t2, &schema, &mut domain);
        if qvsec_cq::canonical_form(&q1) == qvsec_cq::canonical_form(&q2) {
            for pairs in [vec![], vec![(0, 0)], vec![(0, 1), (1, 0)], vec![(1, 1), (2, 0), (0, 2)]] {
                let inst = build_instance(&pairs, &schema, &domain);
                prop_assert_eq!(evaluate(&q1, &inst), evaluate(&q2, &inst),
                    "canonical collision between {} and {}", t1, t2);
            }
        }
    }

    #[test]
    fn containment_is_reflexive(text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        prop_assert!(contained_in(&q, &q, &domain));
    }

    #[test]
    fn every_homomorphism_yields_an_answer(text in query_text(), pairs in instance_strategy()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        let inst = build_instance(&pairs, &schema, &domain);
        let answers = evaluate(&q, &inst);
        for hom in find_homomorphisms(&q, &inst) {
            let image = hom.head_image(&q).expect("safe queries ground their heads");
            prop_assert!(answers.contains(&image));
            let body = hom.body_image(&q).expect("body grounds");
            prop_assert!(body.is_subset_of(&inst));
        }
    }

    #[test]
    fn indexed_answer_survives_matches_the_instance_walking_search(
        text in query_text(),
        pairs in instance_strategy(),
    ) {
        // The bitset-indexed fine-instance search (contiguous per-relation
        // candidate slices, removed tuple as a cleared bit) must agree with
        // the historical Instance-walking search on every (answer, removed
        // tuple) combination — it is the decision inside is_critical.
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        let inst = build_instance(&pairs, &schema, &domain);
        let indexed = qvsec_cq::IndexedInstance::build(&inst);
        let answers = evaluate(&q, &inst);
        // Every real answer, plus one guaranteed non-answer shape.
        let vals: Vec<_> = domain.values().collect();
        let mut candidates: Vec<Vec<_>> = answers.iter().cloned().collect();
        candidates.push(vec![vals[0]; q.arity()]);
        for answer in &candidates {
            for forbidden in std::iter::once(None).chain(inst.iter().map(Some)) {
                prop_assert_eq!(
                    indexed.answer_survives(&q, answer, forbidden),
                    qvsec_cq::homomorphism::answer_survives(&q, &inst, answer, forbidden),
                    "{} diverged on answer {:?} minus {:?}", text, answer, forbidden
                );
            }
        }
    }

    #[test]
    fn containment_implies_answer_inclusion(t1 in query_text(), t2 in query_text(), pairs in instance_strategy()) {
        // Soundness of the containment check: if contained_in(q1, q2) then on
        // every instance every q1-answer is a q2-answer (same arity only).
        let schema = schema();
        let mut domain = domain();
        let q1 = parse(&t1, &schema, &mut domain);
        let q2 = parse(&t2, &schema, &mut domain);
        if q1.arity() == q2.arity() && contained_in(&q1, &q2, &domain) {
            let inst = build_instance(&pairs, &schema, &domain);
            let a1 = evaluate(&q1, &inst);
            let a2 = evaluate(&q2, &inst);
            for a in &a1 {
                prop_assert!(a2.contains(a), "containment unsound for {} ⊑ {}", t1, t2);
            }
        }
    }
}
