//! # qvsec-cq — conjunctive query engine
//!
//! Conjunctive queries with inequalities are the query language of the paper
//! (Section 3.1): datalog rules of the form
//!
//! ```text
//! Q(x, y) :- R1(x, 'a', y), R2(y, 'b', 'c'), x < y, y != 'c'
//! ```
//!
//! where `x, y` are variables, `_` denotes anonymous variables (each
//! occurrence distinct), and quoted identifiers are constants.
//!
//! This crate provides:
//!
//! * the query AST and a programmatic builder ([`ast`], [`builder`]),
//! * a datalog-style parser and pretty-printer ([`parser`], [`display`]),
//! * evaluation over database instances and monotonicity-respecting
//!   homomorphism search ([`eval`], [`homomorphism`]),
//! * unification of subgoals with ground tuples and with each other
//!   ([`unification`]) — the engine behind the candidate-critical-tuple
//!   enumeration and the paper's "practical algorithm" (Section 4.2),
//! * canonical (frozen) databases and classical CQ containment
//!   ([`canonical`], [`containment`]), and
//! * comparison predicates over the domain's total order ([`comparisons`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod canonical;
pub mod comparisons;
pub mod containment;
pub mod display;
pub mod error;
pub mod eval;
pub mod homomorphism;
pub mod indexed;
pub mod parser;
pub mod unification;

pub use ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, VarId, ViewSet};
pub use builder::QueryBuilder;
pub use canonical::{canonical_form, CanonicalDatabase, CanonicalKey};
pub use containment::contained_in;
pub use error::CqError;
pub use eval::{evaluate, evaluate_boolean, Answer, AnswerSet};
pub use homomorphism::{find_homomorphism, find_homomorphisms, Homomorphism};
pub use indexed::IndexedInstance;
pub use parser::{parse_query, parse_view_set};
pub use unification::{unify_atom_with_tuple, unify_atoms, unify_atoms_with_tuple, Substitution};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CqError>;
