//! Programmatic construction of conjunctive queries.
//!
//! The [`QueryBuilder`] mirrors the parser's conventions so that queries can
//! be assembled in code (e.g. by the random workload generators) without
//! going through text:
//!
//! * a term written `'name'` (or any string passed to [`QueryBuilder::constant_head`])
//!   denotes a constant, interned into the domain;
//! * the term `"_"` denotes a fresh anonymous variable (the paper's `−`);
//! * any other identifier denotes a named variable.

use crate::ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term};
use crate::{CqError, Result};
use qvsec_data::{Domain, Schema};

/// A fluent builder for [`ConjunctiveQuery`] values.
pub struct QueryBuilder<'a> {
    schema: &'a Schema,
    domain: &'a mut Domain,
    query: ConjunctiveQuery,
}

impl<'a> QueryBuilder<'a> {
    /// Starts building a query with the given name.
    pub fn new(name: &str, schema: &'a Schema, domain: &'a mut Domain) -> Self {
        QueryBuilder {
            schema,
            domain,
            query: ConjunctiveQuery::new(name),
        }
    }

    fn term(&mut self, spec: &str) -> Term {
        if let Some(stripped) = spec.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
            Term::Const(self.domain.add(stripped))
        } else {
            Term::Var(self.query.add_var(spec))
        }
    }

    /// Adds head terms using the builder's term conventions.
    pub fn head(mut self, terms: &[&str]) -> Self {
        for t in terms {
            let term = self.term(t);
            self.query.head.push(term);
        }
        self
    }

    /// Adds an explicitly constant head term.
    pub fn constant_head(mut self, name: &str) -> Self {
        let v = self.domain.add(name);
        self.query.head.push(Term::Const(v));
        self
    }

    /// Adds a relational subgoal. `terms` follow the builder conventions.
    ///
    /// # Errors
    /// Returns an error if the relation is unknown or the arity is wrong; the
    /// error is deferred to [`QueryBuilder::build`].
    pub fn atom(mut self, relation: &str, terms: &[&str]) -> Self {
        match self.schema.require_relation(relation) {
            Ok(rel) => {
                let ts: Vec<Term> = terms.iter().map(|t| self.term(t)).collect();
                if ts.len() != self.schema.arity(rel) {
                    // record an invalid atom marker by pushing and letting
                    // build() validate arity below
                    self.query.atoms.push(Atom::new(rel, ts));
                } else {
                    self.query.atoms.push(Atom::new(rel, ts));
                }
            }
            Err(_) => {
                // remember the failure by storing an impossible atom; build()
                // re-checks relation names, so simply panic early with a clear
                // message instead of deferring a confusing error.
                panic!("unknown relation `{relation}` in QueryBuilder");
            }
        }
        self
    }

    /// Adds an explicitly constant-only ("ground") subgoal.
    pub fn ground_atom(mut self, relation: &str, constants: &[&str]) -> Self {
        let rel = self
            .schema
            .require_relation(relation)
            .unwrap_or_else(|_| panic!("unknown relation `{relation}` in QueryBuilder"));
        let ts: Vec<Term> = constants
            .iter()
            .map(|c| Term::Const(self.domain.add(c)))
            .collect();
        self.query.atoms.push(Atom::new(rel, ts));
        self
    }

    /// Adds a comparison `lhs op rhs` where `op` is one of `<`, `<=`, `=`,
    /// `!=`, `>`, `>=` (the latter two are normalised by swapping operands).
    pub fn cmp(mut self, lhs: &str, op: &str, rhs: &str) -> Self {
        let l = self.term(lhs);
        let r = self.term(rhs);
        let (lhs, op, rhs) = match op {
            "<" => (l, CmpOp::Lt, r),
            "<=" => (l, CmpOp::Le, r),
            "=" | "==" => (l, CmpOp::Eq, r),
            "!=" | "<>" => (l, CmpOp::Ne, r),
            ">" => (r, CmpOp::Lt, l),
            ">=" => (r, CmpOp::Le, l),
            other => panic!("unknown comparison operator `{other}`"),
        };
        self.query.comparisons.push(Comparison::new(lhs, op, rhs));
        self
    }

    /// Finishes the query, validating arities and safety.
    pub fn build(self) -> Result<ConjunctiveQuery> {
        for atom in &self.query.atoms {
            let expected = self.schema.arity(atom.relation);
            if atom.arity() != expected {
                return Err(CqError::Data(qvsec_data::DataError::ArityMismatch {
                    relation: self.schema.relation(atom.relation).name.clone(),
                    expected,
                    actual: atom.arity(),
                }));
            }
        }
        self.query.validate()?;
        Ok(self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        (schema, Domain::new())
    }

    #[test]
    fn builds_a_projection_view() {
        let (schema, mut domain) = setup();
        // V(n, d) :- Employee(n, d, p)   (Table 1, view V2)
        let v = QueryBuilder::new("V", &schema, &mut domain)
            .head(&["n", "d"])
            .atom("Employee", &["n", "d", "p"])
            .build()
            .unwrap();
        assert_eq!(v.arity(), 2);
        assert_eq!(v.atoms.len(), 1);
        assert_eq!(v.num_vars(), 3);
        assert!(v.constants().is_empty());
    }

    #[test]
    fn builds_selection_with_constant() {
        let (schema, mut domain) = setup();
        // V4(n) :- Employee(n, 'Mgmt', p)
        let v = QueryBuilder::new("V4", &schema, &mut domain)
            .head(&["n"])
            .atom("Employee", &["n", "'Mgmt'", "p"])
            .build()
            .unwrap();
        assert_eq!(v.constants().len(), 1);
        assert!(
            domain.get("Mgmt").is_some(),
            "constant interned into domain"
        );
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let (schema, mut domain) = setup();
        let v = QueryBuilder::new("V", &schema, &mut domain)
            .head(&["n"])
            .atom("Employee", &["n", "_", "_"])
            .build()
            .unwrap();
        assert_eq!(v.num_vars(), 3);
    }

    #[test]
    fn comparisons_normalise_gt() {
        let (schema, mut domain) = setup();
        let v = QueryBuilder::new("V", &schema, &mut domain)
            .head(&["n"])
            .atom("Employee", &["n", "d", "p"])
            .cmp("d", ">", "p")
            .build()
            .unwrap();
        assert_eq!(v.comparisons.len(), 1);
        assert_eq!(v.comparisons[0].op, CmpOp::Lt);
        // operands swapped: p < d
        assert_eq!(v.comparisons[0].lhs.as_var(), v.var_by_name("p"));
    }

    #[test]
    fn arity_errors_are_reported_at_build_time() {
        let (schema, mut domain) = setup();
        let err = QueryBuilder::new("V", &schema, &mut domain)
            .head(&["n"])
            .atom("Employee", &["n", "d"])
            .build()
            .unwrap_err();
        assert!(matches!(err, CqError::Data(_)));
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relations_panic_immediately() {
        let (schema, mut domain) = setup();
        let _ = QueryBuilder::new("V", &schema, &mut domain).atom("Nope", &["x"]);
    }

    #[test]
    fn ground_atom_and_constant_head() {
        let (schema, mut domain) = setup();
        let q = QueryBuilder::new("S", &schema, &mut domain)
            .constant_head("alice")
            .ground_atom("Employee", &["alice", "HR", "555"])
            .build()
            .unwrap();
        assert_eq!(q.arity(), 1);
        assert!(q.atoms[0].is_ground());
    }

    #[test]
    fn unsafe_head_is_rejected() {
        let (schema, mut domain) = setup();
        let err = QueryBuilder::new("V", &schema, &mut domain)
            .head(&["zzz"])
            .atom("Employee", &["n", "d", "p"])
            .build()
            .unwrap_err();
        assert!(matches!(err, CqError::UnsafeHeadVariable(_)));
    }
}
