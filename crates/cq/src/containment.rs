//! Classical conjunctive-query containment.
//!
//! `Q1 ⊑ Q2` (every answer of `Q1` is an answer of `Q2` on every instance)
//! holds, for comparison-free conjunctive queries, iff there is a
//! homomorphism from `Q2` into the canonical database of `Q1` mapping `Q2`'s
//! head onto `Q1`'s frozen head (the homomorphism theorem). Containment and
//! the induced equivalence relate to the paper through the *query answering*
//! discussion of Section 4.1.1: if `V'` is answerable from `V̄` then any
//! query secure w.r.t. `V̄` is secure w.r.t. `V'`; answerability by a single
//! rewriting query is certified by containment both ways.
//!
//! For queries with comparison predicates this check is **sound but not
//! complete**: a `true` result still implies containment (the frozen
//! comparison constraints are honoured), but containment may hold even when
//! the single canonical database does not witness it.

use crate::ast::ConjunctiveQuery;
use crate::canonical::CanonicalDatabase;
use crate::homomorphism::answer_survives;
use qvsec_data::Domain;

/// Whether `q1 ⊑ q2` (see module documentation for the precision caveats with
/// comparison predicates).
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, domain: &Domain) -> bool {
    if q1.arity() != q2.arity() {
        return false;
    }
    // Freezing q1 may fail to satisfy q1's own comparisons (e.g. x < y with x
    // and y frozen to arbitrary fresh constants). The classical theorem
    // applies to comparison-free q1; for q1 with comparisons this remains a
    // sound approximation of containment because an unsatisfiable canonical
    // database makes the check vacuously dependent on q2 only.
    let canon = CanonicalDatabase::freeze(q1, domain);
    answer_survives(q2, &canon.instance, &canon.head_answer, None)
}

/// Whether `q1` and `q2` are equivalent (mutual containment).
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, domain: &Domain) -> bool {
    contained_in(q1, q2, domain) && contained_in(q2, q1, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("Employee", &["name", "department", "phone"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn longer_chains_are_contained_in_shorter_ones() {
        let (schema, mut domain) = setup();
        // Q1: x with a 2-step path from it;  Q2: x with a 1-step path.
        let q1 = parse_query("Q1(x) :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let q2 = parse_query("Q2(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(contained_in(&q1, &q2, &domain));
        assert!(!contained_in(&q2, &q1, &domain));
        assert!(!equivalent(&q1, &q2, &domain));
    }

    #[test]
    fn containment_is_reflexive() {
        let (schema, mut domain) = setup();
        for text in [
            "Q(x) :- R(x, y)",
            "Q() :- R(x, x)",
            "Q(n) :- Employee(n, 'a', p)",
        ] {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            assert!(
                contained_in(&q, &q, &domain),
                "{text} not contained in itself"
            );
        }
    }

    #[test]
    fn selection_is_contained_in_projection() {
        let (schema, mut domain) = setup();
        // names of employees in department 'a' ⊑ all names
        let sel = parse_query("S(n) :- Employee(n, 'a', p)", &schema, &mut domain).unwrap();
        let proj = parse_query("P(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert!(contained_in(&sel, &proj, &domain));
        assert!(!contained_in(&proj, &sel, &domain));
    }

    #[test]
    fn redundant_atoms_do_not_affect_equivalence() {
        let (schema, mut domain) = setup();
        let q1 = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let q2 = parse_query("Q(x) :- R(x, y), R(x, w)", &schema, &mut domain).unwrap();
        assert!(equivalent(&q1, &q2, &domain));
    }

    #[test]
    fn different_arities_are_never_contained() {
        let (schema, mut domain) = setup();
        let q1 = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let q2 = parse_query("Q(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(!contained_in(&q1, &q2, &domain));
        assert!(!contained_in(&q2, &q1, &domain));
    }

    #[test]
    fn boolean_containment() {
        let (schema, mut domain) = setup();
        let specific = parse_query("B1() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let general = parse_query("B2() :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(contained_in(&specific, &general, &domain));
        assert!(!contained_in(&general, &specific, &domain));
    }
}
