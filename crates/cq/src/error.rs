//! Error types for the conjunctive query engine.

use qvsec_data::DataError;
use std::fmt;

/// Errors produced while parsing, building or evaluating conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// A parse error with position information.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the input where the error occurred.
        offset: usize,
    },
    /// A head variable does not occur in the body (unsafe rule).
    UnsafeHeadVariable(String),
    /// A comparison uses a variable that does not occur in any subgoal.
    UnsafeComparisonVariable(String),
    /// An error bubbled up from the data substrate (unknown relation, arity
    /// mismatch, ...).
    Data(DataError),
    /// Generic invariant violation.
    Invalid(String),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CqError::UnsafeHeadVariable(v) => {
                write!(f, "head variable `{v}` does not occur in the body")
            }
            CqError::UnsafeComparisonVariable(v) => {
                write!(f, "comparison variable `{v}` does not occur in any subgoal")
            }
            CqError::Data(e) => write!(f, "{e}"),
            CqError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CqError {}

impl From<DataError> for CqError {
    fn from(e: DataError) -> Self {
        CqError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CqError::Parse {
            message: "expected `)`".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("expected"));

        let e = CqError::UnsafeHeadVariable("x".into());
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn data_errors_convert() {
        let e: CqError = DataError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CqError::Data(_)));
        assert!(e.to_string().contains('R'));
    }
}
