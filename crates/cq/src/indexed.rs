//! Bitset-indexed homomorphism search over frozen (fine) instances.
//!
//! The per-tuple criticality decision of Appendix A freezes a fine instance
//! `I_G` and asks whether the head answer survives in `I_G − {t}` — a
//! homomorphism search that [`crate::homomorphism::answer_survives`] runs
//! over a plain [`Instance`]: every backtracking node walks the instance's
//! whole tuple set to filter the atom's relation, and the removed tuple is
//! skipped by a full tuple-equality compare per candidate.
//!
//! An [`IndexedInstance`] interns the instance once as a sorted
//! [`TupleSpace`] with a [`CandidateSet`] of present tuples. Tuples sort
//! relation-first, so each relation's candidates are one contiguous slice
//! (no filtering), and `I − {t}` is a cleared bit: the candidate loop tests
//! a word-indexed bit instead of comparing tuples. The search itself is the
//! same backtracking procedure with identical comparison handling, so the
//! verdict is equal by construction — property-tested against the
//! `Instance`-walking path in `tests/proptests.rs`.

use crate::ast::{ConjunctiveQuery, Term};
use crate::comparisons::{check_all, check_grounded, resolve_term, PartialAssignment};
use qvsec_data::{BitSet, CandidateSet, Instance, RelationId, Tuple, TupleSpace, Value};
use std::ops::Range;
use std::sync::Arc;

/// An instance interned as a sorted tuple space plus a presence bitset.
/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct IndexedInstance {
    space: Arc<TupleSpace>,
    present: CandidateSet,
    /// Contiguous index range of each relation's tuples within the space,
    /// sorted by relation id (tuples order relation-first).
    ranges: Vec<(RelationId, Range<usize>)>,
}

impl IndexedInstance {
    /// Interns `instance`: sorts its tuples into a [`TupleSpace`] and marks
    /// every one present.
    pub fn build(instance: &Instance) -> Self {
        let space = Arc::new(TupleSpace::from_tuples(instance.iter().cloned().collect()));
        let present = CandidateSet::full(Arc::clone(&space));
        let mut ranges: Vec<(RelationId, Range<usize>)> = Vec::new();
        for (i, t) in space.iter().enumerate() {
            match ranges.last_mut() {
                Some((rel, range)) if *rel == t.relation => range.end = i + 1,
                _ => ranges.push((t.relation, i..i + 1)),
            }
        }
        IndexedInstance {
            space,
            present,
            ranges,
        }
    }

    /// The interned universe (the instance's tuples, sorted).
    pub fn space(&self) -> &Arc<TupleSpace> {
        &self.space
    }

    /// The presence set (all bits set after [`IndexedInstance::build`]).
    pub fn present(&self) -> &CandidateSet {
        &self.present
    }

    /// The slice of space indices holding `relation`'s tuples.
    fn range_of(&self, relation: RelationId) -> Range<usize> {
        self.ranges
            .iter()
            .find(|(rel, _)| *rel == relation)
            .map(|(_, r)| r.clone())
            .unwrap_or(0..0)
    }

    /// Whether some homomorphism maps `query`'s head to exactly `answer`
    /// within this instance, optionally with one tuple removed
    /// (`I − {forbidden}`). Verdict-identical to
    /// [`crate::homomorphism::answer_survives`] over the original instance.
    pub fn answer_survives(
        &self,
        query: &ConjunctiveQuery,
        answer: &[Value],
        forbidden: Option<&Tuple>,
    ) -> bool {
        // Grounded head constants must agree with the required answer.
        if answer.len() != query.head.len() {
            return false;
        }
        for (term, &val) in query.head.iter().zip(answer.iter()) {
            if let Term::Const(c) = term {
                if *c != val {
                    return false;
                }
            }
        }
        // `I − {t}` is one cleared bit; a forbidden tuple outside the
        // space removes nothing.
        let mut present = self.present.bits().clone();
        if let Some(t) = forbidden {
            if let Some(i) = self.space.index_of(t) {
                present.remove(i);
            }
        }
        let mut assignment: PartialAssignment = vec![None; query.num_vars()];
        self.backtrack(query, answer, &present, 0, &mut assignment)
    }

    fn backtrack(
        &self,
        query: &ConjunctiveQuery,
        answer: &[Value],
        present: &BitSet,
        atom_index: usize,
        assignment: &mut PartialAssignment,
    ) -> bool {
        if atom_index == query.atoms.len() {
            // Safety guarantees comparison variables occur in subgoals, so
            // every comparison is grounded here.
            if !check_all(&query.comparisons, assignment) {
                return false;
            }
            return query
                .head
                .iter()
                .zip(answer.iter())
                .all(|(t, &val)| resolve_term(t, assignment) == Some(val));
        }
        let atom = &query.atoms[atom_index];
        for i in self.range_of(atom.relation) {
            if !present.contains(i) {
                continue;
            }
            let tuple = self.space.tuple(i);
            if tuple.arity() != atom.arity() {
                continue;
            }
            let mut newly_bound = Vec::new();
            let mut ok = true;
            for (term, &value) in atom.terms.iter().zip(tuple.values.iter()) {
                match term {
                    Term::Const(c) => {
                        if *c != value {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match assignment[v.index()] {
                        Some(existing) => {
                            if existing != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            assignment[v.index()] = Some(value);
                            newly_bound.push(v.index());
                        }
                    },
                }
            }
            let survived = ok
                && check_grounded(&query.comparisons, assignment)
                // Prune on grounded head variables against the required
                // answer, exactly like the Instance-walking search.
                && query
                    .head
                    .iter()
                    .zip(answer.iter())
                    .all(|(t, &val)| match resolve_term(t, assignment) {
                        Some(v) => v == val,
                        None => true,
                    })
                && self.backtrack(query, answer, present, atom_index + 1, assignment);
            for idx in newly_bound {
                assignment[idx] = None;
            }
            if survived {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::answer_survives;
    use crate::parser::parse_query;
    use qvsec_data::{Domain, Schema};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("S", &["x"]);
        (schema, Domain::with_constants(["a", "b", "c"]))
    }

    fn tup(schema: &Schema, domain: &Domain, x: &str, y: &str) -> Tuple {
        Tuple::from_names(schema, domain, "R", &[x, y]).unwrap()
    }

    #[test]
    fn indexed_search_agrees_with_the_instance_walking_search() {
        let (schema, mut domain) = setup();
        let queries = [
            "Q(x) :- R(x, y)",
            "Q() :- R(x, y), R(y, z)",
            "Q() :- R(x, x)",
            "Q(y) :- R('a', y)",
            "Q(x, y) :- R(x, y), x < y",
            "Q() :- R(x, y), x != y",
        ];
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
            tup(&schema, &domain, "c", "c"),
        ]);
        let indexed = IndexedInstance::build(&inst);
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let answers: Vec<Vec<Value>> = vec![vec![], vec![a], vec![b], vec![a, b], vec![b, a]];
        for text in queries {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            for answer in &answers {
                for forbidden in std::iter::once(None).chain(inst.iter().map(Some)) {
                    assert_eq!(
                        indexed.answer_survives(&q, answer, forbidden),
                        answer_survives(&q, &inst, answer, forbidden),
                        "{text} answer {answer:?} forbidden {forbidden:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn forbidden_tuples_outside_the_instance_remove_nothing() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([tup(&schema, &domain, "a", "b")]);
        let indexed = IndexedInstance::build(&inst);
        let a = domain.get("a").unwrap();
        let outside = tup(&schema, &domain, "c", "a");
        assert!(indexed.answer_survives(&q, &[a], Some(&outside)));
        assert!(!indexed.answer_survives(&q, &[a], Some(&tup(&schema, &domain, "a", "b"))));
    }

    #[test]
    fn relations_index_into_contiguous_ranges() {
        let (schema, domain) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let s = schema.relation_by_name("S").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let inst = Instance::from_tuples([
            Tuple::new(r, vec![a, b]),
            Tuple::new(s, vec![a]),
            Tuple::new(r, vec![b, b]),
        ]);
        let indexed = IndexedInstance::build(&inst);
        assert_eq!(indexed.range_of(r).len(), 2);
        assert_eq!(indexed.range_of(s).len(), 1);
        let other = RelationId(99);
        assert_eq!(indexed.range_of(other).len(), 0);
    }
}
