//! A datalog-style parser for conjunctive queries with inequalities.
//!
//! Syntax (whitespace-insensitive):
//!
//! ```text
//! V(n, d)    :- Employee(n, d, p)
//! S()        :- Employee('Jane', 'Shipping', '1234567')
//! Q(x)       :- R(x, 'a', y), R(y, _, _), x < y, y != 'c'
//! ```
//!
//! * `name(...) :- ...` — the head; an empty argument list makes the query
//!   boolean;
//! * identifiers are **variables**;
//! * quoted identifiers (`'a'`, `"Jane Doe"`) and bare integers are
//!   **constants** (interned into the supplied [`Domain`]);
//! * `_` is an anonymous variable — every occurrence is distinct, like the
//!   paper's `−`;
//! * comparisons use `<`, `<=`, `=`, `!=` (aliases `==`, `<>`), `>`, `>=`.

use crate::ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, ViewSet};
use crate::{CqError, Result};
use qvsec_data::{Domain, Schema};

/// Parses a single conjunctive query. Constants mentioned in the query are
/// interned into `domain`.
pub fn parse_query(input: &str, schema: &Schema, domain: &mut Domain) -> Result<ConjunctiveQuery> {
    let _span = qvsec_obs::Span::enter("cq.parse");
    qvsec_obs::counter("cq.parses").inc();
    Parser::new(input, schema, domain).parse_rule()
}

/// Parses several queries separated by newlines or `;`, returning them as a
/// [`ViewSet`]. Blank lines and lines starting with `%` or `#` (comments) are
/// skipped.
pub fn parse_view_set(input: &str, schema: &Schema, domain: &mut Domain) -> Result<ViewSet> {
    let mut views = Vec::new();
    for chunk in input.split(['\n', ';']) {
        let line = chunk.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        views.push(parse_query(line, schema, domain)?);
    }
    Ok(ViewSet::from_views(views))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    schema: &'a Schema,
    domain: &'a mut Domain,
    /// Whether the last parsed comparison operator was `>`/`>=` and its
    /// operands must therefore be swapped to normalise to `<`/`<=`.
    last_cmp_swapped: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum RawTerm {
    Var(String),
    Anon,
    Const(String),
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, schema: &'a Schema, domain: &'a mut Domain) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            schema,
            domain,
            last_cmp_swapped: false,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(CqError::Parse {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!(
                "expected `{}`, found `{}`",
                expected as char,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn try_eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.error("expected an identifier");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn quoted(&mut self, quote: u8) -> Result<String> {
        // assumes the opening quote has been consumed
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return self.error("unterminated quoted constant");
        }
        let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn raw_term(&mut self) -> Result<RawTerm> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                Ok(RawTerm::Const(self.quoted(b'\'')?))
            }
            Some(b'"') => {
                self.pos += 1;
                Ok(RawTerm::Const(self.quoted(b'"')?))
            }
            Some(c) if c.is_ascii_digit() => {
                let ident = self.ident()?;
                Ok(RawTerm::Const(ident))
            }
            _ => {
                let ident = self.ident()?;
                if ident == "_" {
                    Ok(RawTerm::Anon)
                } else {
                    Ok(RawTerm::Var(ident))
                }
            }
        }
    }

    fn resolve(&mut self, raw: RawTerm, query: &mut ConjunctiveQuery) -> Term {
        match raw {
            RawTerm::Var(name) => Term::Var(query.add_var(&name)),
            RawTerm::Anon => Term::Var(query.add_var("_")),
            RawTerm::Const(name) => Term::Const(self.domain.add(&name)),
        }
    }

    fn term_list(&mut self, query: &mut ConjunctiveQuery) -> Result<Vec<Term>> {
        let mut terms = Vec::new();
        self.eat(b'(')?;
        self.skip_ws();
        if self.peek() == Some(b')') {
            self.pos += 1;
            return Ok(terms);
        }
        loop {
            let raw = self.raw_term()?;
            terms.push(self.resolve(raw, query));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.error("expected `,` or `)` in argument list"),
            }
        }
        Ok(terms)
    }

    fn comparison_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        // two-character operators first
        for (text, op, swap) in [
            ("<=", CmpOp::Le, false),
            (">=", CmpOp::Le, true),
            ("!=", CmpOp::Ne, false),
            ("<>", CmpOp::Ne, false),
            ("==", CmpOp::Eq, false),
            ("<", CmpOp::Lt, false),
            (">", CmpOp::Lt, true),
            ("=", CmpOp::Eq, false),
        ] {
            let save = self.pos;
            if self.try_eat_str(text) {
                self.last_cmp_swapped = swap;
                return Some(op);
            }
            self.pos = save;
        }
        None
    }

    fn parse_rule(&mut self) -> Result<ConjunctiveQuery> {
        let name = self.ident()?;
        let mut query = ConjunctiveQuery::new(&name);
        let head = self.term_list(&mut query)?;
        query.head = head;
        self.skip_ws();
        if !self.try_eat_str(":-") {
            return self.error("expected `:-` after the head");
        }
        loop {
            self.body_item(&mut query)?;
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                continue;
            }
            break;
        }
        self.skip_ws();
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.skip_ws();
        }
        if self.pos != self.input.len() {
            return self.error("unexpected trailing input");
        }
        query.validate()?;
        Ok(query)
    }

    fn body_item(&mut self, query: &mut ConjunctiveQuery) -> Result<()> {
        self.skip_ws();
        // lookahead: an atom is IDENT '(' ; otherwise it is a comparison
        let save = self.pos;
        if let Ok(ident) = self.ident() {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                let rel = self.schema.require_relation(&ident)?;
                let terms = self.term_list(query)?;
                if terms.len() != self.schema.arity(rel) {
                    return Err(CqError::Data(qvsec_data::DataError::ArityMismatch {
                        relation: ident,
                        expected: self.schema.arity(rel),
                        actual: terms.len(),
                    }));
                }
                query.atoms.push(Atom::new(rel, terms));
                return Ok(());
            }
        }
        // not an atom: rewind and parse `term op term`
        self.pos = save;
        let lhs_raw = self.raw_term()?;
        let op = match self.comparison_op() {
            Some(op) => op,
            None => return self.error("expected a comparison operator"),
        };
        let swapped = self.last_cmp_swapped;
        let rhs_raw = self.raw_term()?;
        let lhs = self.resolve(lhs_raw, query);
        let rhs = self.resolve(rhs_raw, query);
        let (lhs, rhs) = if swapped { (rhs, lhs) } else { (lhs, rhs) };
        query.comparisons.push(Comparison::new(lhs, op, rhs));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::new())
    }

    #[test]
    fn parses_table1_projection_views() {
        let (schema, mut domain) = setup();
        let v = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert_eq!(v.name, "V1");
        assert_eq!(v.arity(), 2);
        assert_eq!(v.atoms.len(), 1);
        assert_eq!(v.num_vars(), 3);
        assert!(v.comparisons.is_empty());
    }

    #[test]
    fn parses_boolean_query_with_constants() {
        let (schema, mut domain) = setup();
        let s = parse_query(
            "S() :- Employee('Jane', 'Shipping', '1234567')",
            &schema,
            &mut domain,
        )
        .unwrap();
        assert!(s.is_boolean());
        assert!(s.atoms[0].is_ground());
        assert_eq!(domain.len(), 3);
        assert!(domain.get("Jane").is_some());
    }

    #[test]
    fn parses_anonymous_variables_as_fresh() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, _), R(_, x)", &schema, &mut domain).unwrap();
        // x plus two distinct anonymous variables
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn parses_comparisons_and_normalises_gt() {
        let (schema, mut domain) = setup();
        let q = parse_query(
            "Q(x) :- R(x, y), x < y, y != 'c', x > 'a', y >= x",
            &schema,
            &mut domain,
        )
        .unwrap();
        assert_eq!(q.comparisons.len(), 4);
        assert_eq!(q.comparisons[0].op, CmpOp::Lt);
        assert_eq!(q.comparisons[1].op, CmpOp::Ne);
        // x > 'a' becomes 'a' < x
        assert_eq!(q.comparisons[2].op, CmpOp::Lt);
        assert!(q.comparisons[2].lhs.as_const().is_some());
        // y >= x becomes x <= y
        assert_eq!(q.comparisons[3].op, CmpOp::Le);
        assert_eq!(q.comparisons[3].lhs.as_var(), q.var_by_name("x"));
    }

    #[test]
    fn parses_numeric_constants() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, 42)", &schema, &mut domain).unwrap();
        assert_eq!(q.constants().len(), 1);
        assert!(domain.get("42").is_some());
    }

    #[test]
    fn rejects_unknown_relations_and_bad_arity() {
        let (schema, mut domain) = setup();
        assert!(parse_query("Q(x) :- Nope(x)", &schema, &mut domain).is_err());
        assert!(parse_query("Q(x) :- R(x)", &schema, &mut domain).is_err());
    }

    #[test]
    fn rejects_unsafe_and_malformed_rules() {
        let (schema, mut domain) = setup();
        assert!(matches!(
            parse_query("Q(z) :- R(x, y)", &schema, &mut domain),
            Err(CqError::UnsafeHeadVariable(_))
        ));
        assert!(parse_query("Q(x) R(x, y)", &schema, &mut domain).is_err());
        assert!(parse_query("Q(x) :- R(x, y), x <", &schema, &mut domain).is_err());
        assert!(parse_query("Q(x) :- R(x, 'unterminated)", &schema, &mut domain).is_err());
        assert!(parse_query("Q(x) :- R(x, y) trailing", &schema, &mut domain).is_err());
    }

    #[test]
    fn trailing_period_is_accepted() {
        let (schema, mut domain) = setup();
        assert!(parse_query("Q(x) :- R(x, y).", &schema, &mut domain).is_ok());
    }

    #[test]
    fn parse_view_set_splits_on_newlines_and_semicolons() {
        let (schema, mut domain) = setup();
        let text = "
            % Bob's view and Carol's view (Table 1, row 2)
            V(n, d)  :- Employee(n, d, p)
            Vp(d, p) :- Employee(n, d, p) ; W(n) :- Employee(n, d, p)
        ";
        let views = parse_view_set(text, &schema, &mut domain).unwrap();
        assert_eq!(views.len(), 3);
        assert_eq!(views.views()[0].name, "V");
        assert_eq!(views.views()[2].name, "W");
    }

    #[test]
    fn shared_variables_within_a_rule_are_identified() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        assert_eq!(q.num_vars(), 3);
        let y = q.var_by_name("y").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::Var(y));
        assert_eq!(q.atoms[1].terms[0], Term::Var(y));
    }
}
