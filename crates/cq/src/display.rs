//! Pretty-printing of queries in the parser's syntax.
//!
//! The printer and the parser round-trip: `parse(print(q)) == q` up to
//! variable identity (verified by property tests).

use crate::ast::{Atom, ConjunctiveQuery, Term};
use qvsec_data::{Domain, Schema};
use std::fmt;

/// Renders a query in datalog syntax, resolving relation, constant and
/// variable names.
pub struct QueryDisplay<'a> {
    query: &'a ConjunctiveQuery,
    schema: &'a Schema,
    domain: &'a Domain,
}

impl ConjunctiveQuery {
    /// Returns a displayable wrapper that renders the query in the parser's
    /// datalog syntax.
    pub fn display<'a>(&'a self, schema: &'a Schema, domain: &'a Domain) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
            domain,
        }
    }
}

fn write_term(
    f: &mut fmt::Formatter<'_>,
    term: &Term,
    query: &ConjunctiveQuery,
    domain: &Domain,
) -> fmt::Result {
    match term {
        Term::Var(v) => write!(f, "{}", query.var_name(*v)),
        Term::Const(c) => write!(f, "'{}'", domain.name(*c)),
    }
}

fn write_atom(
    f: &mut fmt::Formatter<'_>,
    atom: &Atom,
    query: &ConjunctiveQuery,
    schema: &Schema,
    domain: &Domain,
) -> fmt::Result {
    write!(f, "{}(", schema.relation(atom.relation).name)?;
    for (i, t) in atom.terms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write_term(f, t, query, domain)?;
    }
    write!(f, ")")
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.query;
        write!(f, "{}(", q.name)?;
        for (i, t) in q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_term(f, t, q, self.domain)?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for atom in &q.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write_atom(f, atom, q, self.schema, self.domain)?;
        }
        for cmp in &q.comparisons {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write_term(f, &cmp.lhs, q, self.domain)?;
            write!(f, " {} ", cmp.op.symbol())?;
            write_term(f, &cmp.rhs, q, self.domain)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;
    use qvsec_data::{Domain, Schema};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::new())
    }

    #[test]
    fn printer_round_trips_through_parser() {
        let (schema, mut domain) = setup();
        let inputs = [
            "V1(n, d) :- Employee(n, d, p)",
            "S() :- Employee('Jane', 'Shipping', '1234567')",
            "Q(x) :- R(x, 'a'), R('a', y), x < y, y != 'c'",
        ];
        for input in inputs {
            let q1 = parse_query(input, &schema, &mut domain).unwrap();
            let printed = q1.display(&schema, &domain).to_string();
            let q2 = parse_query(&printed, &schema, &mut domain).unwrap();
            // structural equality: same atoms, head shape, comparisons
            assert_eq!(q1.atoms, q2.atoms, "atoms differ for {input}");
            assert_eq!(q1.head, q2.head, "heads differ for {input}");
            assert_eq!(
                q1.comparisons, q2.comparisons,
                "comparisons differ for {input}"
            );
        }
    }

    #[test]
    fn boolean_queries_print_empty_head() {
        let (schema, mut domain) = setup();
        let q = parse_query("B() :- R(x, y)", &schema, &mut domain).unwrap();
        let s = q.display(&schema, &domain).to_string();
        assert!(s.starts_with("B() :- R("));
    }
}
