//! Unification of subgoals with ground tuples and with other subgoals.
//!
//! Unification drives two pieces of the paper's machinery:
//!
//! * **Candidate critical tuples.** Any critical tuple of a conjunctive query
//!   must be a homomorphic image of one of its subgoals (Section 4.2), i.e.
//!   the result of unifying that subgoal with a ground tuple. The
//!   criterion-based `crit` procedure enumerates exactly these candidates.
//! * **The practical algorithm.** "Simply compare all pairs of subgoals from
//!   `S` and from `V̄`. If any pair of subgoals unify, then ¬(S | V̄)" may be
//!   reported (Section 4.2) — a sound, fast over-approximation implemented by
//!   [`unify_atoms`].

use crate::ast::{Atom, Term, VarId};
use qvsec_data::{Tuple, Value};
use std::collections::HashMap;

/// A partial substitution of query variables by domain values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    bindings: HashMap<VarId, Value>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// The value bound to a variable, if any.
    pub fn get(&self, v: VarId) -> Option<Value> {
        self.bindings.get(&v).copied()
    }

    /// Binds `v` to `value`; fails (returns `false`) if `v` is already bound
    /// to a different value.
    pub fn bind(&mut self, v: VarId, value: Value) -> bool {
        match self.bindings.get(&v) {
            Some(&existing) => existing == value,
            None => {
                self.bindings.insert(v, value);
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.bindings.iter().map(|(&v, &val)| (v, val))
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Const(_) => *term,
            Term::Var(v) => match self.get(*v) {
                Some(val) => Term::Const(val),
                None => *term,
            },
        }
    }

    /// Applies the substitution to an atom, producing a ground tuple if every
    /// variable of the atom is bound.
    pub fn ground_atom(&self, atom: &Atom) -> Option<Tuple> {
        let values: Option<Vec<Value>> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => self.get(*v),
            })
            .collect();
        values.map(|v| Tuple::new(atom.relation, v))
    }
}

/// Unifies a single subgoal with a ground tuple: same relation, constants
/// agree positionally, and variables bind consistently. Returns the matching
/// substitution, or `None`.
pub fn unify_atom_with_tuple(atom: &Atom, tuple: &Tuple) -> Option<Substitution> {
    let mut subst = Substitution::new();
    extend_unify_atom_with_tuple(&mut subst, atom, tuple).then_some(subst)
}

/// Extends an existing substitution by unifying `atom` with `tuple`. Returns
/// `false` (leaving the substitution in an unspecified but safe state) if
/// unification fails.
pub fn extend_unify_atom_with_tuple(subst: &mut Substitution, atom: &Atom, tuple: &Tuple) -> bool {
    if atom.relation != tuple.relation || atom.arity() != tuple.arity() {
        return false;
    }
    for (term, &value) in atom.terms.iter().zip(tuple.values.iter()) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if !subst.bind(*v, value) {
                    return false;
                }
            }
        }
    }
    true
}

/// Simultaneously unifies a set of subgoals with a single ground tuple: all
/// subgoals must map onto `tuple` under one common substitution. This is the
/// construction of the *fine instances* `I_G` of Appendix A, where `G` is the
/// set of subgoals mapped to the tuple `t`.
pub fn unify_atoms_with_tuple(atoms: &[&Atom], tuple: &Tuple) -> Option<Substitution> {
    let mut subst = Substitution::new();
    for atom in atoms {
        if !extend_unify_atom_with_tuple(&mut subst, atom, tuple) {
            return None;
        }
    }
    Some(subst)
}

/// Whether two subgoals — understood as coming from *different* queries, so
/// their variables are disjoint even if their `VarId`s coincide — can be
/// mapped to a common ground tuple.
///
/// This is the test of the paper's "practical algorithm": `S | V̄` certainly
/// holds if no subgoal of `S` unifies with a subgoal of `V̄`.
pub fn unify_atoms(left: &Atom, right: &Atom) -> bool {
    if left.relation != right.relation || left.arity() != right.arity() {
        return false;
    }
    // Union-find over the terms of both atoms, tagging variables by side.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    enum Node {
        LeftVar(VarId),
        RightVar(VarId),
        Const(Value),
    }
    let mut parent: HashMap<Node, Node> = HashMap::new();
    fn find(parent: &mut HashMap<Node, Node>, mut n: Node) -> Node {
        loop {
            let p = *parent.entry(n).or_insert(n);
            if p == n {
                return n;
            }
            // path halving
            let gp = *parent.entry(p).or_insert(p);
            parent.insert(n, gp);
            n = gp;
        }
    }
    fn union(parent: &mut HashMap<Node, Node>, a: Node, b: Node) -> bool {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra == rb {
            return true;
        }
        match (ra, rb) {
            (Node::Const(x), Node::Const(y)) => x == y,
            (Node::Const(_), _) => {
                parent.insert(rb, ra);
                true
            }
            (_, Node::Const(_)) => {
                parent.insert(ra, rb);
                true
            }
            _ => {
                parent.insert(ra, rb);
                true
            }
        }
    }
    let node_of = |side_left: bool, term: &Term| match term {
        Term::Const(c) => Node::Const(*c),
        Term::Var(v) => {
            if side_left {
                Node::LeftVar(*v)
            } else {
                Node::RightVar(*v)
            }
        }
    };
    for (lt, rt) in left.terms.iter().zip(right.terms.iter()) {
        let ln = node_of(true, lt);
        let rn = node_of(false, rt);
        if !union(&mut parent, ln, rn) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qvsec_data::{Domain, Schema, Tuple};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("T", &["a", "b", "c", "d", "e"]);
        (
            schema,
            Domain::with_constants(["a", "b", "c", "0", "1", "2", "3"]),
        )
    }

    #[test]
    fn atom_unifies_with_matching_tuple() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, 'a')", &schema, &mut domain).unwrap();
        let atom = &q.atoms[0];
        let t_ba = Tuple::from_names(&schema, &domain, "R", &["b", "a"]).unwrap();
        let t_bb = Tuple::from_names(&schema, &domain, "R", &["b", "b"]).unwrap();
        let subst = unify_atom_with_tuple(atom, &t_ba).unwrap();
        assert_eq!(subst.len(), 1);
        assert_eq!(
            subst.get(q.var_by_name("x").unwrap()),
            Some(domain.get("b").unwrap())
        );
        assert!(
            unify_atom_with_tuple(atom, &t_bb).is_none(),
            "constant mismatch"
        );
        assert_eq!(subst.ground_atom(atom), Some(t_ba));
    }

    #[test]
    fn repeated_variables_require_equal_values() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let atom = &q.atoms[0];
        let t_ab = Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        let t_aa = Tuple::from_names(&schema, &domain, "R", &["a", "a"]).unwrap();
        assert!(unify_atom_with_tuple(atom, &t_ab).is_none());
        assert!(unify_atom_with_tuple(atom, &t_aa).is_some());
    }

    #[test]
    fn simultaneous_unification_with_one_tuple() {
        // The Section 4.2 example: Q():-R(x,y,z,z,u),R(x,x,x,y,y) and the
        // tuple t = R(a,a,b,b,c). The first subgoal unifies with t, the second
        // does not, and the two cannot be simultaneously unified with t.
        let (schema, mut domain) = setup();
        let q = parse_query(
            "Q() :- T(x, y, z, z, u), T(x, x, x, y, y)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let t = Tuple::from_names(&schema, &domain, "T", &["a", "a", "b", "b", "c"]).unwrap();
        let g0 = &q.atoms[0];
        let g1 = &q.atoms[1];
        assert!(unify_atom_with_tuple(g0, &t).is_some());
        assert!(unify_atom_with_tuple(g1, &t).is_none());
        assert!(unify_atoms_with_tuple(&[g0, g1], &t).is_none());
        assert!(unify_atoms_with_tuple(&[g0], &t).is_some());
    }

    #[test]
    fn atom_atom_unification_respects_sides() {
        let (schema, mut domain) = setup();
        // S() :- R('a', x)   and   V() :- R(y, 'b') unify (common tuple R(a,b))
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(y, 'b')", &schema, &mut domain).unwrap();
        assert!(unify_atoms(&s.atoms[0], &v.atoms[0]));

        // S() :- R('a', 'a')  and  V() :- R('b', x) do not (constant clash)
        let s2 = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
        let v2 = parse_query("V() :- R('b', x)", &schema, &mut domain).unwrap();
        assert!(!unify_atoms(&s2.atoms[0], &v2.atoms[0]));
    }

    #[test]
    fn atom_atom_unification_handles_repeated_variables() {
        let (schema, mut domain) = setup();
        // R(x, x) vs R('a', 'b'): x would need to be both a and b
        let s = parse_query("S() :- R(x, x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', 'b')", &schema, &mut domain).unwrap();
        assert!(!unify_atoms(&s.atoms[0], &v.atoms[0]));
        // R(x, x) vs R(y, z): fine (map everything to one constant)
        let v2 = parse_query("V2() :- R(y, z)", &schema, &mut domain).unwrap();
        assert!(unify_atoms(&s.atoms[0], &v2.atoms[0]));
        // transitive constant clash: R(x, x) vs R('a', y) where y later forced to 'b'
        // is covered by the chain case below: R(x, y), and right R('a', 'b') with x=y
        let s3 = parse_query("S3() :- T(x, x, y, y, z)", &schema, &mut domain).unwrap();
        let v3 = parse_query("V3() :- T('a', w, w, 'b', z)", &schema, &mut domain).unwrap();
        // x='a', x=w, w=y, y='b' → 'a'='b' contradiction
        assert!(!unify_atoms(&s3.atoms[0], &v3.atoms[0]));
    }

    #[test]
    fn different_relations_never_unify() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- T(a, b, c, d, e)", &schema, &mut domain).unwrap();
        assert!(!unify_atoms(&s.atoms[0], &v.atoms[0]));
        let t = Tuple::from_names(&schema, &domain, "T", &["a", "a", "b", "b", "c"]).unwrap();
        assert!(unify_atom_with_tuple(&s.atoms[0], &t).is_none());
    }

    #[test]
    fn substitution_accessors() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        assert!(s.bind(VarId(0), Value(3)));
        assert!(s.bind(VarId(0), Value(3)), "re-binding same value is fine");
        assert!(!s.bind(VarId(0), Value(4)), "conflicting binding fails");
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.apply_term(&Term::Var(VarId(0))), Term::Const(Value(3)));
        assert_eq!(s.apply_term(&Term::Var(VarId(9))), Term::Var(VarId(9)));
        assert_eq!(s.apply_term(&Term::Const(Value(7))), Term::Const(Value(7)));
    }

    use qvsec_data::Value;
}
