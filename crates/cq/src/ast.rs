//! Abstract syntax of conjunctive queries with inequalities.

use qvsec_data::{RelationId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::{CqError, Result};

/// A variable of a conjunctive query, scoped to that query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw index of this variable within its query.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: either a variable or a constant of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A domain constant.
    Const(Value),
}

impl Term {
    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }
}

/// A relational subgoal `R(t1, ..., tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The relation of the subgoal.
    pub relation: RelationId,
    /// Its terms, in attribute order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: RelationId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The distinct variables of the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// The constants of the atom.
    pub fn constants(&self) -> Vec<Value> {
        self.terms.iter().filter_map(|t| t.as_const()).collect()
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }
}

/// Comparison operators allowed in query bodies. `>` and `>=` are normalised
/// to `<` and `<=` by swapping operands at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Strictly less than (under the domain's total order).
    Lt,
    /// Less than or equal.
    Le,
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
}

impl CmpOp {
    /// Applies the operator to two domain values.
    pub fn apply(self, lhs: Value, rhs: Value) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The textual form of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// A comparison predicate `lhs op rhs` in a query body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Comparison { lhs, op, rhs }
    }

    /// The variables occurring in the comparison.
    pub fn variables(&self) -> Vec<VarId> {
        [self.lhs, self.rhs]
            .iter()
            .filter_map(|t| t.as_var())
            .collect()
    }
}

/// A conjunctive query with inequalities, in datalog notation:
/// `Q(head) :- atom, ..., comparison, ...`.
///
/// A query with an empty head is *boolean* (Section 3.1). Queries own their
/// variable namespace: variables are created through
/// [`ConjunctiveQuery::add_var`] (or the builder / parser) and are only
/// meaningful within the query that created them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// The query name (cosmetic; used by the pretty-printer).
    pub name: String,
    /// Head terms (empty for boolean queries).
    pub head: Vec<Term>,
    /// Relational subgoals.
    pub atoms: Vec<Atom>,
    /// Comparison predicates.
    pub comparisons: Vec<Comparison>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Creates an empty query with the given name.
    pub fn new(name: &str) -> Self {
        ConjunctiveQuery {
            name: name.to_string(),
            head: Vec::new(),
            atoms: Vec::new(),
            comparisons: Vec::new(),
            var_names: Vec::new(),
        }
    }

    /// Adds a variable with the given display name and returns its id.
    /// Adding the same name twice returns the existing variable (except for
    /// the anonymous name `"_"`, which always creates a fresh variable, as in
    /// the paper's `−` notation).
    pub fn add_var(&mut self, name: &str) -> VarId {
        if name != "_" {
            if let Some(i) = self.var_names.iter().position(|n| n == name) {
                return VarId(i as u32);
            }
        }
        let id = VarId(self.var_names.len() as u32);
        let display = if name == "_" {
            format!("_{}", id.0)
        } else {
            name.to_string()
        };
        self.var_names.push(display);
        id
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks up a named variable.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// The number of variables in the query's namespace.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Iterates over all variables of the query.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.var_names.len() as u32).map(VarId)
    }

    /// All distinct constants mentioned in the head, body or comparisons.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for t in &self.head {
            if let Some(c) = t.as_const() {
                out.insert(c);
            }
        }
        for a in &self.atoms {
            out.extend(a.constants());
        }
        for c in &self.comparisons {
            if let Some(v) = c.lhs.as_const() {
                out.insert(v);
            }
            if let Some(v) = c.rhs.as_const() {
                out.insert(v);
            }
        }
        out
    }

    /// Number of distinct variables plus distinct constants. This is the `n`
    /// of Proposition 4.9 (domain-independence requires `|D| ≥ n(n+1)` in the
    /// presence of order predicates, `|D| ≥ n` without them).
    pub fn symbol_count(&self) -> usize {
        self.num_vars() + self.constants().len()
    }

    /// Whether the query is boolean (arity 0).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The output arity of the query.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Whether the query uses order predicates (`<`, `<=`).
    pub fn has_order_comparisons(&self) -> bool {
        self.comparisons
            .iter()
            .any(|c| matches!(c.op, CmpOp::Lt | CmpOp::Le))
    }

    /// Whether the query has any comparison predicates.
    pub fn has_comparisons(&self) -> bool {
        !self.comparisons.is_empty()
    }

    /// The distinct relations mentioned in the body.
    pub fn relations(&self) -> BTreeSet<RelationId> {
        self.atoms.iter().map(|a| a.relation).collect()
    }

    /// Checks the safety conditions: every head variable and every comparison
    /// variable must occur in some relational subgoal.
    pub fn validate(&self) -> Result<()> {
        let body_vars: BTreeSet<VarId> = self.atoms.iter().flat_map(|a| a.variables()).collect();
        for t in &self.head {
            if let Some(v) = t.as_var() {
                if !body_vars.contains(&v) {
                    return Err(CqError::UnsafeHeadVariable(self.var_name(v).to_string()));
                }
            }
        }
        for c in &self.comparisons {
            for v in c.variables() {
                if !body_vars.contains(&v) {
                    return Err(CqError::UnsafeComparisonVariable(
                        self.var_name(v).to_string(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Builds a boolean query asserting the presence of a single ground tuple
    /// (`S() :- t`), as used in the reduction of Theorem 4.11.
    pub fn tuple_assertion(name: &str, tuple: &qvsec_data::Tuple) -> Self {
        let mut q = ConjunctiveQuery::new(name);
        q.atoms.push(Atom::new(
            tuple.relation,
            tuple.values.iter().map(|&v| Term::Const(v)).collect(),
        ));
        q
    }
}

/// A set of views `V̄ = V1, ..., Vk` published together (or to distinct
/// recipients who may collude — Section 4.1.1, "Collusions").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ViewSet {
    views: Vec<ConjunctiveQuery>,
}

impl ViewSet {
    /// Creates an empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Creates a view set from a vector of views.
    pub fn from_views(views: Vec<ConjunctiveQuery>) -> Self {
        ViewSet { views }
    }

    /// Creates a view set holding a single view.
    pub fn single(view: ConjunctiveQuery) -> Self {
        ViewSet { views: vec![view] }
    }

    /// Adds a view.
    pub fn push(&mut self, view: ConjunctiveQuery) {
        self.views.push(view);
    }

    /// The views in publication order.
    pub fn views(&self) -> &[ConjunctiveQuery] {
        &self.views
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Iterates over the views.
    pub fn iter(&self) -> impl Iterator<Item = &ConjunctiveQuery> + '_ {
        self.views.iter()
    }
}

impl From<ConjunctiveQuery> for ViewSet {
    fn from(q: ConjunctiveQuery) -> Self {
        ViewSet::single(q)
    }
}

impl From<Vec<ConjunctiveQuery>> for ViewSet {
    fn from(v: Vec<ConjunctiveQuery>) -> Self {
        ViewSet::from_views(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_data::{Domain, Schema, Tuple};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("R", &["x", "y"]);
        s
    }

    #[test]
    fn add_var_interns_named_variables_but_not_anonymous() {
        let mut q = ConjunctiveQuery::new("Q");
        let x1 = q.add_var("x");
        let x2 = q.add_var("x");
        assert_eq!(x1, x2);
        let a1 = q.add_var("_");
        let a2 = q.add_var("_");
        assert_ne!(a1, a2, "anonymous variables are always fresh");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.var_name(x1), "x");
        assert!(q.var_name(a1).starts_with('_'));
        assert_eq!(q.var_by_name("x"), Some(x1));
        assert_eq!(q.var_by_name("zzz"), None);
    }

    #[test]
    fn boolean_and_arity() {
        let schema = schema();
        let r = schema.relation_by_name("R").unwrap();
        let mut q = ConjunctiveQuery::new("Q");
        let x = q.add_var("x");
        q.atoms.push(Atom::new(r, vec![Term::Var(x), Term::Var(x)]));
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
        q.head.push(Term::Var(x));
        assert!(!q.is_boolean());
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn validation_rejects_unsafe_queries() {
        let schema = schema();
        let r = schema.relation_by_name("R").unwrap();
        let mut q = ConjunctiveQuery::new("Q");
        let x = q.add_var("x");
        let y = q.add_var("y");
        q.atoms.push(Atom::new(r, vec![Term::Var(x), Term::Var(x)]));
        q.head.push(Term::Var(y));
        assert!(matches!(q.validate(), Err(CqError::UnsafeHeadVariable(_))));

        let mut q2 = ConjunctiveQuery::new("Q2");
        let x = q2.add_var("x");
        let z = q2.add_var("z");
        q2.atoms
            .push(Atom::new(r, vec![Term::Var(x), Term::Var(x)]));
        q2.comparisons
            .push(Comparison::new(Term::Var(x), CmpOp::Lt, Term::Var(z)));
        assert!(matches!(
            q2.validate(),
            Err(CqError::UnsafeComparisonVariable(_))
        ));
    }

    #[test]
    fn symbol_count_counts_distinct_vars_and_constants() {
        let schema = schema();
        let r = schema.relation_by_name("R").unwrap();
        let domain = Domain::with_constants(["a", "b"]);
        let a = domain.get("a").unwrap();
        let mut q = ConjunctiveQuery::new("Q");
        let x = q.add_var("x");
        let y = q.add_var("y");
        q.atoms
            .push(Atom::new(r, vec![Term::Var(x), Term::Const(a)]));
        q.atoms
            .push(Atom::new(r, vec![Term::Var(y), Term::Const(a)]));
        assert_eq!(q.symbol_count(), 3); // x, y, a
        assert_eq!(q.constants().len(), 1);
        assert_eq!(q.relations().len(), 1);
    }

    #[test]
    fn cmp_op_semantics_follow_domain_order() {
        let domain = Domain::with_constants(["a", "b"]);
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        assert!(CmpOp::Lt.apply(a, b));
        assert!(!CmpOp::Lt.apply(b, a));
        assert!(CmpOp::Le.apply(a, a));
        assert!(CmpOp::Eq.apply(a, a));
        assert!(CmpOp::Ne.apply(a, b));
        assert_eq!(CmpOp::Le.symbol(), "<=");
    }

    #[test]
    fn atom_accessors() {
        let schema = schema();
        let r = schema.relation_by_name("R").unwrap();
        let domain = Domain::with_constants(["a"]);
        let a = domain.get("a").unwrap();
        let mut q = ConjunctiveQuery::new("Q");
        let x = q.add_var("x");
        let atom = Atom::new(r, vec![Term::Var(x), Term::Const(a)]);
        assert_eq!(atom.arity(), 2);
        assert_eq!(atom.variables(), vec![x]);
        assert_eq!(atom.constants(), vec![a]);
        assert!(!atom.is_ground());
        let ground = Atom::new(r, vec![Term::Const(a), Term::Const(a)]);
        assert!(ground.is_ground());
    }

    #[test]
    fn tuple_assertion_builds_ground_boolean_query() {
        let schema = schema();
        let domain = Domain::with_constants(["a", "b"]);
        let t = Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        let q = ConjunctiveQuery::tuple_assertion("S", &t);
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 1);
        assert!(q.atoms[0].is_ground());
        assert!(q.validate().is_ok());
    }

    #[test]
    fn view_set_constructors() {
        let q = ConjunctiveQuery::new("V1");
        let mut vs = ViewSet::single(q.clone());
        assert_eq!(vs.len(), 1);
        vs.push(ConjunctiveQuery::new("V2"));
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.views()[1].name, "V2");
        let vs2: ViewSet = vec![q.clone()].into();
        assert_eq!(vs2.len(), 1);
        let vs3: ViewSet = q.into();
        assert!(!vs3.is_empty());
        assert!(ViewSet::new().is_empty());
    }
}
