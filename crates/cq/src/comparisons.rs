//! Evaluation of comparison predicates under (partial) variable assignments.

use crate::ast::{Comparison, Term, VarId};
use qvsec_data::Value;

/// A partial assignment of query variables to domain values, indexed by
/// [`VarId`].
pub type PartialAssignment = Vec<Option<Value>>;

/// Resolves a term under a partial assignment.
pub fn resolve_term(term: &Term, assignment: &PartialAssignment) -> Option<Value> {
    match term {
        Term::Const(c) => Some(*c),
        Term::Var(v) => assignment.get(v.index()).copied().flatten(),
    }
}

/// Checks every comparison that is fully grounded under `assignment`.
/// Returns `false` as soon as one grounded comparison is violated; ungrounded
/// comparisons are skipped (they may still be satisfied later).
pub fn check_grounded(comparisons: &[Comparison], assignment: &PartialAssignment) -> bool {
    comparisons.iter().all(|c| {
        match (
            resolve_term(&c.lhs, assignment),
            resolve_term(&c.rhs, assignment),
        ) {
            (Some(l), Some(r)) => c.op.apply(l, r),
            _ => true,
        }
    })
}

/// Checks every comparison under a *total* assignment: all comparisons must
/// be grounded and satisfied.
pub fn check_all(comparisons: &[Comparison], assignment: &PartialAssignment) -> bool {
    comparisons.iter().all(|c| {
        match (
            resolve_term(&c.lhs, assignment),
            resolve_term(&c.rhs, assignment),
        ) {
            (Some(l), Some(r)) => c.op.apply(l, r),
            _ => false,
        }
    })
}

/// Returns the variables that occur in some comparison but are not assigned.
pub fn unassigned_comparison_vars(
    comparisons: &[Comparison],
    assignment: &PartialAssignment,
) -> Vec<VarId> {
    let mut out = Vec::new();
    for c in comparisons {
        for v in c.variables() {
            if assignment.get(v.index()).copied().flatten().is_none() && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use qvsec_data::Domain;

    fn terms() -> (Value, Value, Term, Term, Term) {
        let domain = Domain::with_constants(["a", "b"]);
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        (
            a,
            b,
            Term::Var(VarId(0)),
            Term::Var(VarId(1)),
            Term::Const(b),
        )
    }

    #[test]
    fn grounded_comparisons_are_enforced() {
        let (a, b, x, y, _cb) = terms();
        let cmps = vec![Comparison::new(x, CmpOp::Lt, y)];
        // x = a, y = b satisfies a < b
        assert!(check_all(&cmps, &vec![Some(a), Some(b)]));
        // x = b, y = a violates
        assert!(!check_all(&cmps, &vec![Some(b), Some(a)]));
    }

    #[test]
    fn ungrounded_comparisons_pass_partial_but_fail_total_check() {
        let (a, _b, x, y, _cb) = terms();
        let cmps = vec![Comparison::new(x, CmpOp::Ne, y)];
        let partial = vec![Some(a), None];
        assert!(check_grounded(&cmps, &partial));
        assert!(!check_all(&cmps, &partial));
        assert_eq!(unassigned_comparison_vars(&cmps, &partial), vec![VarId(1)]);
    }

    #[test]
    fn constants_resolve_without_assignment() {
        let (a, b, x, _y, cb) = terms();
        let cmps = vec![Comparison::new(x, CmpOp::Lt, cb)];
        assert!(check_all(&cmps, &vec![Some(a)]));
        assert!(!check_all(&cmps, &vec![Some(b)]), "b < b fails");
    }
}
