//! Canonical (frozen) databases.
//!
//! The canonical database of a conjunctive query freezes every variable into
//! a fresh constant and reads the body as an instance. It is the classical
//! tool behind CQ containment (Chandra–Merkurio homomorphism theorem), and in
//! this workspace it also powers:
//!
//! * the *fine instances* of Appendix A (frozen bodies where some subgoals
//!   are collapsed onto a distinguished tuple), and
//! * the quotient-image enumeration used for the asymptotic exponents of the
//!   practical-security model (Section 6.2).

use crate::ast::{ConjunctiveQuery, Term, VarId};
use qvsec_data::{Domain, Instance, Tuple, Value};
use std::collections::HashMap;

/// The canonical database of a query: its body frozen into an instance.
#[derive(Debug, Clone)]
pub struct CanonicalDatabase {
    /// The frozen body.
    pub instance: Instance,
    /// The constant assigned to each variable.
    pub frozen_vars: HashMap<VarId, Value>,
    /// The frozen head answer (empty for boolean queries).
    pub head_answer: Vec<Value>,
    /// The domain extended with the fresh constants used for freezing.
    pub extended_domain: Domain,
}

impl CanonicalDatabase {
    /// Freezes `query` over (a copy of) `domain`. Every variable is assigned
    /// a fresh constant; pre-existing constants are kept as-is.
    pub fn freeze(query: &ConjunctiveQuery, domain: &Domain) -> Self {
        Self::freeze_with(query, domain, &HashMap::new())
    }

    /// Freezes `query`, but forces the variables listed in `pinned` to the
    /// given values instead of fresh constants. This is how the fine
    /// instances `I_G` of Appendix A are built: the variables bound by
    /// unifying the subgoal set `G` with the distinguished tuple `t` are
    /// pinned, all others are frozen fresh.
    pub fn freeze_with(
        query: &ConjunctiveQuery,
        domain: &Domain,
        pinned: &HashMap<VarId, Value>,
    ) -> Self {
        let mut extended = domain.clone();
        let mut frozen_vars: HashMap<VarId, Value> = pinned.clone();
        for v in query.variables() {
            frozen_vars
                .entry(v)
                .or_insert_with(|| extended.fresh(query.var_name(v)));
        }
        let resolve = |t: &Term| -> Value {
            match t {
                Term::Const(c) => *c,
                Term::Var(v) => frozen_vars[v],
            }
        };
        let mut instance = Instance::new();
        for atom in &query.atoms {
            instance.insert(Tuple::new(
                atom.relation,
                atom.terms.iter().map(resolve).collect(),
            ));
        }
        let head_answer = query.head.iter().map(resolve).collect();
        CanonicalDatabase {
            instance,
            frozen_vars,
            head_answer,
            extended_domain: extended,
        }
    }

    /// The frozen value of a variable.
    pub fn value_of(&self, v: VarId) -> Value {
        self.frozen_vars[&v]
    }
}

/// A canonical, name-independent rendering of a query, suitable as a memo
/// key for semantic analyses such as the critical-tuple set `crit(Q)`.
///
/// **Soundness (the property caches rely on):** equal canonical forms imply
/// the queries are identical up to variable naming and subgoal/comparison
/// order — transformations that leave `crit(Q)`, evaluation and containment
/// untouched. The cosmetic query name is deliberately excluded, so
/// `V1(x) :- R(x, y)` and `W(a) :- R(a, b)` share one cache entry.
///
/// **Completeness is best-effort:** variable renamings and most subgoal
/// reorderings collapse to one form, but reordering subgoals whose local
/// patterns tie (e.g. `R(x, y), R(y, z)` vs `R(y, z), R(x, y)`) can yield
/// distinct forms because the tie is broken by source order. That costs a
/// duplicate cache entry, never a wrong cache hit.
///
/// The construction: subgoals are sorted by a variable-name-independent
/// pattern, variables are renumbered by first occurrence across the sorted
/// body (then head, then comparisons), and the result is rendered with
/// constants as interned indices.
///
/// ```
/// use qvsec_cq::{canonical_form, parse_query};
/// use qvsec_data::{Domain, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("R", &["x", "y"]);
/// let mut domain = Domain::new();
///
/// // α-equivalent queries (renamed variables, different cosmetic names)
/// // share one canonical form ...
/// let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
/// let w = parse_query("W(u) :- R(u, w)", &schema, &mut domain).unwrap();
/// assert_eq!(canonical_form(&v), canonical_form(&w));
///
/// // ... while structurally different queries do not.
/// let flipped = parse_query("F(y) :- R(x, y)", &schema, &mut domain).unwrap();
/// assert_ne!(canonical_form(&v), canonical_form(&flipped));
/// ```
pub fn canonical_form(query: &ConjunctiveQuery) -> String {
    use crate::ast::Atom;
    use std::fmt::Write;

    let _span = qvsec_obs::Span::enter("cq.canonicalize");
    qvsec_obs::counter("cq.canonicalizations").inc();

    // A per-atom pattern independent of global variable identity: constants
    // by interned index, variables by position of first occurrence *within
    // this atom* (so `R(x, x)` and `R(y, y)` sort identically).
    fn local_pattern(atom: &Atom) -> (u32, Vec<(u8, u32)>) {
        let mut seen: Vec<VarId> = Vec::new();
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => (0u8, c.0),
                Term::Var(v) => {
                    let idx = match seen.iter().position(|s| s == v) {
                        Some(i) => i,
                        None => {
                            seen.push(*v);
                            seen.len() - 1
                        }
                    };
                    (1u8, idx as u32)
                }
            })
            .collect();
        (atom.relation.0, terms)
    }

    let mut order: Vec<usize> = (0..query.atoms.len()).collect();
    order.sort_by_key(|&i| local_pattern(&query.atoms[i]));

    // Renumber variables by first occurrence over sorted atoms, head, then
    // comparisons.
    let mut renumber: HashMap<VarId, usize> = HashMap::new();
    let mut next = 0usize;
    let mut rename = |v: VarId, renumber: &mut HashMap<VarId, usize>| -> usize {
        *renumber.entry(v).or_insert_with(|| {
            let n = next;
            next += 1;
            n
        })
    };
    let mut out = String::new();
    let mut term_str = |t: &Term, renumber: &mut HashMap<VarId, usize>| match t {
        Term::Const(c) => format!("c{}", c.0),
        Term::Var(v) => format!("v{}", rename(*v, renumber)),
    };
    for &i in &order {
        let atom = &query.atoms[i];
        let _ = write!(out, "r{}(", atom.relation.0);
        for (j, t) in atom.terms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&term_str(t, &mut renumber));
        }
        out.push(')');
        out.push(';');
    }
    out.push('|');
    for (j, t) in query.head.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&term_str(t, &mut renumber));
    }
    out.push('|');
    let mut cmps: Vec<String> = query
        .comparisons
        .iter()
        .map(|c| {
            format!(
                "{}{}{}",
                term_str(&c.lhs, &mut renumber),
                c.op.symbol(),
                term_str(&c.rhs, &mut renumber)
            )
        })
        .collect();
    cmps.sort();
    out.push_str(&cmps.join(";"));
    out
}

/// A domain-size-independent memo key for compiled per-query artifacts.
///
/// Engine-level caches key compiled artifacts two ways:
///
/// * **per-domain artifacts** (the materialized `crit_D(Q)` set, interned
///   candidate spaces) additionally fold in the active-domain size, because
///   the artifact itself enumerates `tup(D)`;
/// * **domain-size-independent artifacts** (symmetry-class criticality
///   verdicts, witness-mask compilations against a fixed tuple space) key on
///   the [`canonical_form`] alone — the verdict of a symmetry class depends
///   only on the query's structure, never on how many constants the domain
///   happens to hold.
///
/// `order_free` records whether the query avoids order comparisons
/// (`<`/`<=`). Only order-free queries may share class verdicts across
/// domain sizes: equality and disequality are preserved by every domain
/// bijection, order predicates are not.
///
/// ```
/// use qvsec_cq::{parse_query, CanonicalKey};
/// use qvsec_data::{Domain, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("R", &["x", "y"]);
/// let mut domain = Domain::new();
/// let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
/// let w = parse_query("W(u) :- R(u, w)", &schema, &mut domain).unwrap();
/// assert_eq!(CanonicalKey::of(&v), CanonicalKey::of(&w));
/// assert!(CanonicalKey::of(&v).order_free());
///
/// let ordered = parse_query("Q() :- R(x, y), x < y", &schema, &mut domain).unwrap();
/// assert!(!CanonicalKey::of(&ordered).order_free());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    form: String,
    order_free: bool,
}

impl CanonicalKey {
    /// Computes the key of `query`: its [`canonical_form`] plus the
    /// order-free flag gating cross-domain-size verdict sharing.
    pub fn of(query: &ConjunctiveQuery) -> Self {
        CanonicalKey {
            form: canonical_form(query),
            order_free: !query.has_order_comparisons(),
        }
    }

    /// The canonical rendering (invariant under variable renaming, the
    /// cosmetic query name and most subgoal reorderings).
    pub fn form(&self) -> &str {
        &self.form
    }

    /// Whether the query avoids `<`/`<=` — the precondition for reusing
    /// symmetry-class verdicts across domain sizes.
    pub fn order_free(&self) -> bool {
        self.order_free
    }

    /// Consumes the key, returning the canonical form.
    pub fn into_form(self) -> String {
        self.form
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn frozen_body_has_one_tuple_per_distinct_atom_image() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let canon = CanonicalDatabase::freeze(&q, &domain);
        assert_eq!(canon.instance.len(), 2);
        assert_eq!(canon.head_answer.len(), 1);
        // fresh constants were added to the extended domain only
        assert!(canon.extended_domain.len() > domain.len());
        assert_eq!(domain.len(), 2);
    }

    #[test]
    fn query_is_satisfied_by_its_own_canonical_database() {
        // The defining property: Q evaluated on freeze(Q) yields the frozen
        // head answer.
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x, z) :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let canon = CanonicalDatabase::freeze(&q, &domain);
        let answers = evaluate(&q, &canon.instance);
        assert!(answers.contains(&canon.head_answer));
    }

    #[test]
    fn constants_are_preserved_by_freezing() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, 'a')", &schema, &mut domain).unwrap();
        let canon = CanonicalDatabase::freeze(&q, &domain);
        let a = domain.get("a").unwrap();
        let tuple = canon.instance.iter().next().unwrap();
        assert_eq!(tuple.values[1], a);
        assert_ne!(tuple.values[0], a, "variable froze to a fresh constant");
    }

    #[test]
    fn pinned_variables_take_requested_values() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), R(y, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let y = q.var_by_name("y").unwrap();
        let mut pinned = HashMap::new();
        pinned.insert(y, a);
        let canon = CanonicalDatabase::freeze_with(&q, &domain, &pinned);
        assert_eq!(canon.value_of(y), a);
        // R(y, y) collapses onto R(a, a)
        let r = schema.relation_by_name("R").unwrap();
        assert!(canon.instance.contains(&Tuple::new(r, vec![a, a])));
        assert_eq!(canon.instance.len(), 2);
    }

    #[test]
    fn repeated_identical_atoms_collapse_in_the_frozen_instance() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), R(x, y)", &schema, &mut domain).unwrap();
        let canon = CanonicalDatabase::freeze(&q, &domain);
        assert_eq!(canon.instance.len(), 1);
    }
}
