//! Query evaluation over database instances.
//!
//! `Q(I)` is the set of head images of all homomorphisms from `Q`'s body into
//! `I` that satisfy the comparison predicates (Section 3.1). Boolean queries
//! (arity 0) evaluate to `true` iff at least one homomorphism exists.

use crate::ast::ConjunctiveQuery;
use crate::homomorphism::{find_homomorphism, find_homomorphisms};
use qvsec_data::{Instance, Value};
use std::collections::BTreeSet;

/// A single answer tuple of a query.
pub type Answer = Vec<Value>;

/// The full answer set of a query on an instance.
pub type AnswerSet = BTreeSet<Answer>;

/// Evaluates a query over an instance, returning its answer set.
///
/// For a boolean query the result is either the empty set (false) or the
/// singleton set containing the empty tuple (true).
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> AnswerSet {
    let mut answers = AnswerSet::new();
    if query.is_boolean() {
        if find_homomorphism(query, instance).is_some() {
            answers.insert(Vec::new());
        }
        return answers;
    }
    for hom in find_homomorphisms(query, instance) {
        if let Some(image) = hom.head_image(query) {
            answers.insert(image);
        }
    }
    answers
}

/// Evaluates a boolean query (`true` iff the body is satisfiable in the
/// instance). Non-boolean queries are treated as their boolean projection
/// ("is the answer set non-empty?").
pub fn evaluate_boolean(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    find_homomorphism(query, instance).is_some()
}

/// Evaluates every view of a view set, returning the vector of answer sets in
/// view order. This is the published value `V̄(I) = (V1(I), ..., Vk(I))`.
pub fn evaluate_views(views: &crate::ast::ViewSet, instance: &Instance) -> Vec<AnswerSet> {
    views.iter().map(|v| evaluate(v, instance)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ViewSet;
    use crate::parser::{parse_query, parse_view_set};
    use qvsec_data::{Domain, Schema, Tuple};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        (
            schema,
            Domain::with_constants(["a", "b", "alice", "bob", "sales", "hr", "p1", "p2"]),
        )
    }

    fn emp(schema: &Schema, domain: &Domain, n: &str, d: &str, p: &str) -> Tuple {
        Tuple::from_names(schema, domain, "Employee", &[n, d, p]).unwrap()
    }

    #[test]
    fn projection_view_returns_projected_pairs() {
        let (schema, mut domain) = setup();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            emp(&schema, &domain, "alice", "sales", "p1"),
            emp(&schema, &domain, "bob", "sales", "p2"),
        ]);
        let answers = evaluate(&v, &inst);
        assert_eq!(answers.len(), 2);
        let alice = domain.get("alice").unwrap();
        let sales = domain.get("sales").unwrap();
        assert!(answers.contains(&vec![alice, sales]));
    }

    #[test]
    fn duplicate_projections_collapse() {
        let (schema, mut domain) = setup();
        let v = parse_query("V(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            emp(&schema, &domain, "alice", "sales", "p1"),
            emp(&schema, &domain, "bob", "sales", "p2"),
        ]);
        assert_eq!(evaluate(&v, &inst).len(), 1, "set semantics");
    }

    #[test]
    fn boolean_queries_report_satisfiability() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- Employee('alice', 'sales', p)", &schema, &mut domain).unwrap();
        let yes = Instance::from_tuples([emp(&schema, &domain, "alice", "sales", "p1")]);
        let no = Instance::from_tuples([emp(&schema, &domain, "bob", "sales", "p1")]);
        assert!(evaluate_boolean(&s, &yes));
        assert!(!evaluate_boolean(&s, &no));
        assert_eq!(evaluate(&s, &yes).len(), 1);
        assert!(evaluate(&s, &no).is_empty());
    }

    #[test]
    fn empty_instance_yields_empty_answers() {
        let (schema, mut domain) = setup();
        let v = parse_query("V(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert!(evaluate(&v, &Instance::new()).is_empty());
    }

    #[test]
    fn evaluation_is_monotone() {
        // Conjunctive queries are monotone: I ⊆ I' ⇒ Q(I) ⊆ Q(I')
        // (Section 3.1). Spot-check on a small family of instances.
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x, z) :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let t_ab = Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        let t_bb = Tuple::from_names(&schema, &domain, "R", &["b", "b"]).unwrap();
        let t_ba = Tuple::from_names(&schema, &domain, "R", &["b", "a"]).unwrap();
        let small = Instance::from_tuples([t_ab.clone(), t_bb.clone()]);
        let large = Instance::from_tuples([t_ab, t_bb, t_ba]);
        let small_ans = evaluate(&q, &small);
        let large_ans = evaluate(&q, &large);
        assert!(small_ans.iter().all(|a| large_ans.contains(a)));
        assert!(large_ans.len() >= small_ans.len());
    }

    #[test]
    fn view_sets_evaluate_componentwise() {
        let (schema, mut domain) = setup();
        let views: ViewSet = parse_view_set(
            "VBob(n, d) :- Employee(n, d, p)\nVCarol(d, p) :- Employee(n, d, p)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let inst = Instance::from_tuples([emp(&schema, &domain, "alice", "sales", "p1")]);
        let results = evaluate_views(&views, &inst);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 1);
        assert_eq!(results[1].len(), 1);
    }

    #[test]
    fn selection_with_constant_filters() {
        let (schema, mut domain) = setup();
        let v = parse_query("V(n) :- Employee(n, 'sales', p)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            emp(&schema, &domain, "alice", "sales", "p1"),
            emp(&schema, &domain, "bob", "hr", "p2"),
        ]);
        let answers = evaluate(&v, &inst);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![domain.get("alice").unwrap()]));
    }
}
