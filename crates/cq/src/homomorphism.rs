//! Homomorphism search from query bodies into database instances.
//!
//! A homomorphism maps the variables of a query to domain values such that
//! the image of every subgoal is a tuple of the instance and every comparison
//! predicate holds. Homomorphisms are the workhorse of the whole workspace:
//! query evaluation, containment, the criterion-based critical-tuple test
//! (Appendix A reasons entirely in terms of homomorphisms `h : Q → I` and
//! alternatives `h_new : Q → I − {t}`) and the canonical-database
//! constructions all reduce to this search.

use crate::ast::{ConjunctiveQuery, Term};
use crate::comparisons::{check_grounded, PartialAssignment};
use qvsec_data::{Instance, Tuple, Value};

/// A total assignment of (the body-relevant) query variables to values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    /// Value assigned to each variable (indexed by `VarId`); `None` for
    /// variables that do not occur in any subgoal.
    pub assignment: Vec<Option<Value>>,
}

impl Homomorphism {
    /// The value of a term under this homomorphism (head constants resolve to
    /// themselves).
    pub fn term_value(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => self.assignment.get(v.index()).copied().flatten(),
        }
    }

    /// The image of the query head under this homomorphism. Head variables
    /// that do not occur in the body (rejected by validation) yield `None`.
    pub fn head_image(&self, query: &ConjunctiveQuery) -> Option<Vec<Value>> {
        query.head.iter().map(|t| self.term_value(t)).collect()
    }

    /// The image of the query body: the set of tuples the subgoals are mapped
    /// to.
    pub fn body_image(&self, query: &ConjunctiveQuery) -> Option<Instance> {
        let mut inst = Instance::new();
        for atom in &query.atoms {
            let values: Option<Vec<Value>> =
                atom.terms.iter().map(|t| self.term_value(t)).collect();
            inst.insert(Tuple::new(atom.relation, values?));
        }
        Some(inst)
    }
}

/// Options controlling the homomorphism search.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Stop after this many homomorphisms have been found.
    pub limit: Option<usize>,
    /// Require the head image to equal this answer (used to test whether a
    /// specific answer survives when a tuple is removed — the non-boolean
    /// case of the critical-tuple test).
    pub required_answer: Option<Vec<Value>>,
    /// Require every subgoal image to avoid this tuple (equivalent to
    /// searching in `I − {t}` but without copying the instance).
    pub forbidden_tuple: Option<Tuple>,
}

/// Finds homomorphisms from `query` into `instance`, subject to `options`.
pub fn search(
    query: &ConjunctiveQuery,
    instance: &Instance,
    options: &SearchOptions,
) -> Vec<Homomorphism> {
    let mut results = Vec::new();
    let mut assignment: PartialAssignment = vec![None; query.num_vars()];

    // Pre-check: grounded head constants against a required answer.
    if let Some(answer) = &options.required_answer {
        if answer.len() != query.head.len() {
            return results;
        }
        for (term, &val) in query.head.iter().zip(answer.iter()) {
            match term {
                Term::Const(c) if *c != val => return results,
                Term::Const(_) => {}
                Term::Var(_) => {}
            }
        }
    }

    backtrack(query, instance, options, 0, &mut assignment, &mut results);
    results
}

fn backtrack(
    query: &ConjunctiveQuery,
    instance: &Instance,
    options: &SearchOptions,
    atom_index: usize,
    assignment: &mut PartialAssignment,
    results: &mut Vec<Homomorphism>,
) {
    if let Some(limit) = options.limit {
        if results.len() >= limit {
            return;
        }
    }
    if atom_index == query.atoms.len() {
        // All atoms matched: every comparison must now be grounded (safety
        // guarantees comparison variables occur in subgoals) and satisfied.
        if !crate::comparisons::check_all(&query.comparisons, assignment) {
            return;
        }
        let hom = Homomorphism {
            assignment: assignment.clone(),
        };
        if let Some(answer) = &options.required_answer {
            match hom.head_image(query) {
                Some(image) if &image == answer => {}
                _ => return,
            }
        }
        results.push(hom);
        return;
    }

    let atom = &query.atoms[atom_index];
    // iterate over candidate tuples of the right relation
    let candidates: Vec<&Tuple> = instance.tuples_of(atom.relation).collect();
    for tuple in candidates {
        if let Some(forbidden) = &options.forbidden_tuple {
            if tuple == forbidden {
                continue;
            }
        }
        if tuple.arity() != atom.arity() {
            continue;
        }
        // try to extend the assignment by matching atom against tuple
        let mut newly_bound = Vec::new();
        let mut ok = true;
        for (term, &value) in atom.terms.iter().zip(tuple.values.iter()) {
            match term {
                Term::Const(c) => {
                    if *c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment[v.index()] {
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment[v.index()] = Some(value);
                        newly_bound.push(v.index());
                    }
                },
            }
        }
        if ok && check_grounded(&query.comparisons, assignment) {
            // prune using the required answer on grounded head variables
            let answer_ok = match &options.required_answer {
                Some(answer) => query.head.iter().zip(answer.iter()).all(|(t, &val)| {
                    match crate::comparisons::resolve_term(t, assignment) {
                        Some(v) => v == val,
                        None => true,
                    }
                }),
                None => true,
            };
            if answer_ok {
                backtrack(
                    query,
                    instance,
                    options,
                    atom_index + 1,
                    assignment,
                    results,
                );
            }
        }
        for idx in newly_bound {
            assignment[idx] = None;
        }
    }
}

/// Finds all homomorphisms from `query` into `instance`.
pub fn find_homomorphisms(query: &ConjunctiveQuery, instance: &Instance) -> Vec<Homomorphism> {
    search(query, instance, &SearchOptions::default())
}

/// Finds one homomorphism from `query` into `instance`, if any exists.
pub fn find_homomorphism(query: &ConjunctiveQuery, instance: &Instance) -> Option<Homomorphism> {
    search(
        query,
        instance,
        &SearchOptions {
            limit: Some(1),
            ..SearchOptions::default()
        },
    )
    .into_iter()
    .next()
}

/// Whether some homomorphism maps `query`'s head to exactly `answer` within
/// `instance`, optionally avoiding a forbidden tuple.
pub fn answer_survives(
    query: &ConjunctiveQuery,
    instance: &Instance,
    answer: &[Value],
    forbidden: Option<&Tuple>,
) -> bool {
    !search(
        query,
        instance,
        &SearchOptions {
            limit: Some(1),
            required_answer: Some(answer.to_vec()),
            forbidden_tuple: forbidden.cloned(),
        },
    )
    .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qvsec_data::{Domain, Schema, Tuple};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b", "c"]))
    }

    fn tup(schema: &Schema, domain: &Domain, x: &str, y: &str) -> Tuple {
        Tuple::from_names(schema, domain, "R", &[x, y]).unwrap()
    }

    #[test]
    fn finds_all_matches_of_a_single_atom() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
        ]);
        let homs = find_homomorphisms(&q, &inst);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn join_variables_are_respected() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let path = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
        ]);
        assert!(find_homomorphism(&q, &path).is_some());
        let no_path = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "c", "a"),
        ]);
        // a->b then needs b->?, absent... but c->a then a->b works
        assert!(find_homomorphism(&q, &no_path).is_some());
        let disconnected = Instance::from_tuples([tup(&schema, &domain, "a", "b")]);
        // single edge a->b: needs R(b, z), absent
        assert!(find_homomorphism(&q, &disconnected).is_none());
    }

    #[test]
    fn repeated_variables_must_match_equal_values() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let no_loop = Instance::from_tuples([tup(&schema, &domain, "a", "b")]);
        assert!(find_homomorphism(&q, &no_loop).is_none());
        let with_loop = Instance::from_tuples([tup(&schema, &domain, "b", "b")]);
        assert!(find_homomorphism(&q, &with_loop).is_some());
    }

    #[test]
    fn constants_restrict_matches() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(y) :- R('a', y)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
        ]);
        let homs = find_homomorphisms(&q, &inst);
        assert_eq!(homs.len(), 1);
        assert_eq!(
            homs[0].head_image(&q).unwrap(),
            vec![domain.get("b").unwrap()]
        );
    }

    #[test]
    fn comparisons_filter_homomorphisms() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x, y) :- R(x, y), x < y", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "a"),
            tup(&schema, &domain, "c", "c"),
        ]);
        let homs = find_homomorphisms(&q, &inst);
        assert_eq!(homs.len(), 1, "only a < b survives");
    }

    #[test]
    fn required_answer_and_forbidden_tuple() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let tab = tup(&schema, &domain, "a", "b");
        let tac = tup(&schema, &domain, "a", "c");
        let inst = Instance::from_tuples([tab.clone(), tac.clone()]);
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        // answer (a) survives removing R(a,b) because R(a,c) still yields it
        assert!(answer_survives(&q, &inst, &[a], Some(&tab)));
        // answer (b) never exists
        assert!(!answer_survives(&q, &inst, &[b], None));
        // removing both supports kills the answer
        let only = Instance::from_tuples([tab.clone()]);
        assert!(!answer_survives(&q, &only, &[a], Some(&tab)));
    }

    #[test]
    fn body_image_collects_mapped_tuples() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
        ]);
        let hom = find_homomorphism(&q, &inst).unwrap();
        let image = hom.body_image(&q).unwrap();
        assert!(image.is_subset_of(&inst));
        assert_eq!(image.len(), 2);
    }

    #[test]
    fn limit_stops_early() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let inst = Instance::from_tuples([
            tup(&schema, &domain, "a", "b"),
            tup(&schema, &domain, "b", "c"),
            tup(&schema, &domain, "c", "a"),
        ]);
        let homs = search(
            &q,
            &inst,
            &SearchOptions {
                limit: Some(2),
                ..SearchOptions::default()
            },
        );
        assert_eq!(homs.len(), 2);
    }
}
