//! # qvsec-workload — paper scenarios and workload generators
//!
//! Everything the examples, the integration tests and the benchmark harness
//! need to exercise the `qvsec` decision procedures on the workloads the
//! paper discusses:
//!
//! * the paper's schemas (Employee, Patient, the manufacturing-exchange
//!   schema of the introduction) — [`schemas`];
//! * the exact query/view pairs of Table 1 and of the worked examples,
//!   together with the verdicts the paper assigns them — [`paper`];
//! * random workload generators (chain/star/random conjunctive queries,
//!   scaled domains and dictionaries) for the scaling benchmarks —
//!   [`generators`];
//! * multi-party collusion auditing: which coalitions of view recipients can
//!   jointly violate a secret — [`scenarios`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod paper;
pub mod scenarios;
pub mod schemas;

pub use paper::{table1, Table1Row};
pub use scenarios::{collusion_audit, CoalitionReport};
