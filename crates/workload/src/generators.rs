//! Random workload generators for the scaling benchmarks.
//!
//! The paper's complexity results (Theorems 4.10/4.11) say the exact
//! procedures are exponential in the query size; the benches measure that
//! growth on synthetic families: chain queries, star queries and random
//! conjunctive queries over a binary relation, with scaled domains and
//! dictionaries.

use qvsec_cq::{Atom, ConjunctiveQuery, Term};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use rand::Rng;

/// A chain (path) query `Q(x0, xk) :- R(x0, x1), R(x1, x2), ..., R(x{k-1}, xk)`.
pub fn chain_query(schema: &Schema, length: usize) -> ConjunctiveQuery {
    let r = schema.relation_by_name("R").expect("binary relation R");
    let mut q = ConjunctiveQuery::new(&format!("Chain{length}"));
    let vars: Vec<_> = (0..=length).map(|i| q.add_var(&format!("x{i}"))).collect();
    for i in 0..length {
        q.atoms.push(Atom::new(
            r,
            vec![Term::Var(vars[i]), Term::Var(vars[i + 1])],
        ));
    }
    q.head = vec![Term::Var(vars[0]), Term::Var(vars[length])];
    q
}

/// A boolean chain query (no head) of the given length.
pub fn boolean_chain_query(schema: &Schema, length: usize) -> ConjunctiveQuery {
    let mut q = chain_query(schema, length);
    q.head.clear();
    q.name = format!("BChain{length}");
    q
}

/// A star query `Q(c) :- R(c, x1), R(c, x2), ..., R(c, xk)`.
pub fn star_query(schema: &Schema, branches: usize) -> ConjunctiveQuery {
    let r = schema.relation_by_name("R").expect("binary relation R");
    let mut q = ConjunctiveQuery::new(&format!("Star{branches}"));
    let center = q.add_var("c");
    for i in 0..branches {
        let leaf = q.add_var(&format!("x{i}"));
        q.atoms
            .push(Atom::new(r, vec![Term::Var(center), Term::Var(leaf)]));
    }
    q.head = vec![Term::Var(center)];
    q
}

/// A random conjunctive query over `R/2`: each subgoal's terms are drawn from
/// `num_vars` variables and the constants of `domain` (with probability
/// `const_prob` of picking a constant). The head projects the first variable
/// that occurs in the body, or is boolean if none does.
pub fn random_query<R: Rng + ?Sized>(
    schema: &Schema,
    domain: &Domain,
    num_atoms: usize,
    num_vars: usize,
    const_prob: f64,
    rng: &mut R,
) -> ConjunctiveQuery {
    let r = schema.relation_by_name("R").expect("binary relation R");
    let mut q = ConjunctiveQuery::new("Random");
    let vars: Vec<_> = (0..num_vars.max(1))
        .map(|i| q.add_var(&format!("x{i}")))
        .collect();
    let constants: Vec<_> = domain.values().collect();
    let term = |q_rng: &mut R| -> Term {
        if !constants.is_empty() && q_rng.gen::<f64>() < const_prob {
            Term::Const(constants[q_rng.gen_range(0..constants.len())])
        } else {
            Term::Var(vars[q_rng.gen_range(0..vars.len())])
        }
    };
    for _ in 0..num_atoms.max(1) {
        let terms = vec![term(rng), term(rng)];
        q.atoms.push(Atom::new(r, terms));
    }
    // pick a head variable that occurs in the body, if any
    let body_var = q.atoms.iter().flat_map(|a| a.variables()).next();
    if let Some(v) = body_var {
        q.head = vec![Term::Var(v)];
    }
    q
}

/// A uniform dictionary with probability `p` over the full tuple space of
/// `schema` × a fresh domain of `domain_size` constants.
pub fn uniform_dictionary(schema: &Schema, domain_size: usize, p: Ratio) -> (Domain, Dictionary) {
    let domain = Domain::with_size(domain_size);
    let space = TupleSpace::full_with_cap(schema, &domain, 1 << 20).expect("space fits the cap");
    let dict = Dictionary::uniform(space, p).expect("valid probability");
    (domain, dict)
}

/// A batch of random queries sharing one schema/domain, for benchmark loops.
pub fn random_query_batch(
    schema: &Schema,
    domain: &Domain,
    count: usize,
    num_atoms: usize,
    seed: u64,
) -> Vec<ConjunctiveQuery> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_query(schema, domain, num_atoms, num_atoms + 1, 0.3, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::binary_schema;
    use qvsec_cq::eval::evaluate;
    use qvsec_data::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_queries_have_the_requested_shape() {
        let schema = binary_schema();
        for len in 1..=5 {
            let q = chain_query(&schema, len);
            assert_eq!(q.atoms.len(), len);
            assert_eq!(q.num_vars(), len + 1);
            assert_eq!(q.arity(), 2);
            assert!(q.validate().is_ok());
            let b = boolean_chain_query(&schema, len);
            assert!(b.is_boolean());
        }
    }

    #[test]
    fn chain_query_evaluates_paths() {
        let schema = binary_schema();
        let domain = Domain::with_constants(["a", "b", "c"]);
        let q = chain_query(&schema, 2);
        let t = |x: &str, y: &str| {
            qvsec_data::Tuple::from_names(&schema, &domain, "R", &[x, y]).unwrap()
        };
        let inst = Instance::from_tuples([t("a", "b"), t("b", "c")]);
        let answers = evaluate(&q, &inst);
        let a = domain.get("a").unwrap();
        let c = domain.get("c").unwrap();
        assert!(answers.contains(&vec![a, c]));
    }

    #[test]
    fn star_queries_share_the_center_variable() {
        let schema = binary_schema();
        let q = star_query(&schema, 4);
        assert_eq!(q.atoms.len(), 4);
        assert_eq!(q.num_vars(), 5);
        assert!(q.atoms.iter().all(|a| a.terms[0] == q.atoms[0].terms[0]));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn random_queries_are_wellformed() {
        let schema = binary_schema();
        let domain = Domain::with_constants(["a", "b"]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let q = random_query(&schema, &domain, 3, 3, 0.4, &mut rng);
            assert!(q.validate().is_ok());
            assert!(!q.atoms.is_empty());
        }
    }

    #[test]
    fn uniform_dictionary_scales_with_domain() {
        let schema = binary_schema();
        let (domain, dict) = uniform_dictionary(&schema, 3, Ratio::new(1, 4));
        assert_eq!(domain.len(), 3);
        assert_eq!(dict.len(), 9);
        assert_eq!(dict.prob(0), Ratio::new(1, 4));
    }

    #[test]
    fn batches_are_reproducible() {
        let schema = binary_schema();
        let domain = Domain::with_constants(["a", "b"]);
        let b1 = random_query_batch(&schema, &domain, 5, 2, 42);
        let b2 = random_query_batch(&schema, &domain, 5, 2, 42);
        assert_eq!(b1.len(), 5);
        for (x, y) in b1.iter().zip(&b2) {
            assert_eq!(x.atoms, y.atoms);
        }
    }
}
