//! The relational schemas used throughout the paper.

use qvsec_data::{Domain, Schema};

/// `Employee(name, department, phone)` — the running example of Section 1
/// and Table 1.
pub fn employee_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Employee", &["name", "department", "phone"]);
    s
}

/// `Patient(name, disease)` — the hospital dictionary example of
/// Section 3.2.
pub fn patient_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Patient", &["name", "disease"]);
    s
}

/// The manufacturing data-exchange schema sketched in the introduction:
/// parts for products, product features/prices for retailers, labor costs
/// for the tax consultant, and the internal manufacturing costs the company
/// wants to keep secret.
pub fn manufacturing_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Part", &["product", "part", "supplier"]);
    s.add_relation("Product", &["product", "feature", "price"]);
    s.add_relation("Labor", &["product", "operation", "cost"]);
    s.add_relation("ManufCost", &["product", "cost"]);
    s
}

/// A single binary relation `R(x, y)` — the schema of the worked examples of
/// Section 4 (Examples 4.2, 4.3, 4.12).
pub fn binary_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

/// `Employee` with a key on `name` — used by the key-constraint experiments
/// (Section 5.2, Application 2).
pub fn employee_schema_with_key() -> Schema {
    let mut s = employee_schema();
    let emp = s.relation_by_name("Employee").unwrap();
    s.add_key(emp, &[0]).unwrap();
    s
}

/// A small employee domain: a few names, departments and phone numbers.
pub fn small_employee_domain() -> Domain {
    Domain::with_constants([
        "alice", "bob", "carol", "dave", "Sales", "HR", "Mgmt", "p1", "p2", "p3", "p4",
    ])
}

/// The two-constant domain `{a, b}` of the Section 4 worked examples.
pub fn ab_domain() -> Domain {
    Domain::with_constants(["a", "b"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_the_documented_relations() {
        assert_eq!(employee_schema().len(), 1);
        assert_eq!(
            employee_schema().arity(employee_schema().relation_by_name("Employee").unwrap()),
            3
        );
        assert_eq!(patient_schema().len(), 1);
        assert_eq!(manufacturing_schema().len(), 4);
        assert!(manufacturing_schema()
            .relation_by_name("ManufCost")
            .is_some());
        assert_eq!(
            binary_schema().arity(binary_schema().relation_by_name("R").unwrap()),
            2
        );
    }

    #[test]
    fn keyed_schema_declares_the_name_key() {
        let s = employee_schema_with_key();
        assert_eq!(s.keys().len(), 1);
        assert_eq!(s.keys()[0].positions, vec![0]);
    }

    #[test]
    fn domains_contain_expected_constants() {
        assert!(small_employee_domain().get("alice").is_some());
        assert!(small_employee_domain().get("Mgmt").is_some());
        assert_eq!(ab_domain().len(), 2);
    }
}
