//! The exact query/view pairs studied in the paper, with the verdicts the
//! paper assigns them.

use crate::schemas::{ab_domain, binary_schema, employee_schema};
use qvsec::report::DisclosureClass;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::Domain;

/// One row of Table 1: a secret query, the published views, and the paper's
/// assessment of the disclosure.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row number (1–4) as printed in the paper.
    pub id: usize,
    /// The secret query `S_i`.
    pub secret: ConjunctiveQuery,
    /// The published views.
    pub views: ViewSet,
    /// The paper's informal description of the disclosure.
    pub disclosure: DisclosureClass,
    /// The paper's query-view security verdict (the last column).
    pub secure: bool,
    /// The domain the queries were parsed against (shared across the row).
    pub domain: Domain,
    /// Human-readable description.
    pub description: &'static str,
}

/// Builds the four rows of Table 1 over `Emp(name, department, phone)`.
pub fn table1() -> Vec<Table1Row> {
    let schema = employee_schema();
    let mut rows = Vec::new();

    // (1) V1(n,d) :- Emp(n,d,p)   S1(d) :- Emp(n,d,p)       Total    No
    {
        let mut domain = Domain::new();
        let v = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        rows.push(Table1Row {
            id: 1,
            secret: s,
            views: ViewSet::single(v),
            disclosure: DisclosureClass::Total,
            secure: false,
            domain,
            description: "S1 is answerable from V1: total disclosure",
        });
    }
    // (2) V2(n,d), V2'(d,p)       S2(n,p)                    Partial  No
    {
        let mut domain = Domain::new();
        let v2 = parse_query("V2(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let v2p = parse_query("V2p(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s = parse_query("S2(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        rows.push(Table1Row {
            id: 2,
            secret: s,
            views: ViewSet::from_views(vec![v2, v2p]),
            disclosure: DisclosureClass::Partial,
            secure: false,
            domain,
            description: "Bob and Carol collude on the name-phone association: partial disclosure",
        });
    }
    // (3) V3(n)                   S3(p)                      Minute   No
    {
        let mut domain = Domain::new();
        let v = parse_query("V3(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s = parse_query("S3(p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        rows.push(Table1Row {
            id: 3,
            secret: s,
            views: ViewSet::single(v),
            disclosure: DisclosureClass::Minute,
            secure: false,
            domain,
            description: "the name list reveals only the database size: minute disclosure",
        });
    }
    // (4) V4(n):-Emp(n,Mgmt,p)    S4(n):-Emp(n,HR,p)         None     Yes
    {
        let mut domain = Domain::new();
        let v = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let s = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        rows.push(Table1Row {
            id: 4,
            secret: s,
            views: ViewSet::single(v),
            disclosure: DisclosureClass::NoDisclosure,
            secure: true,
            domain,
            description: "management names say nothing about HR names: secure",
        });
    }
    rows
}

/// The Example 4.2 pair (not secure): `V(x) :- R(x, y)`, `S(y) :- R(x, y)`
/// over `D = {a, b}`.
pub fn example_4_2() -> (ConjunctiveQuery, ConjunctiveQuery, Domain) {
    let schema = binary_schema();
    let mut domain = ab_domain();
    let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
    (s, v, domain)
}

/// The Example 4.3 pair (secure): `V(x) :- R(x, 'b')`, `S(y) :- R(y, 'a')`.
pub fn example_4_3() -> (ConjunctiveQuery, ConjunctiveQuery, Domain) {
    let schema = binary_schema();
    let mut domain = ab_domain();
    let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
    let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
    (s, v, domain)
}

/// The Example 4.12 boolean query `Q() :- R('a', x), R(x, x)` whose event
/// polynomial is `x1 + x2·x4 − x1·x2·x4`.
pub fn example_4_12() -> (ConjunctiveQuery, Domain) {
    let schema = binary_schema();
    let mut domain = ab_domain();
    let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
    (q, domain)
}

/// The Section 2.1 boolean pair (Jane / Shipping): the view makes the secret
/// substantially more likely even though it does not determine it.
pub fn section_2_1() -> (ConjunctiveQuery, ConjunctiveQuery, Domain) {
    let schema = employee_schema();
    let mut domain = Domain::with_constants(["Jane", "Shipping", "1234567", "Joe", "7654321"]);
    let s = parse_query(
        "S() :- Employee('Jane', 'Shipping', '1234567')",
        &schema,
        &mut domain,
    )
    .unwrap();
    let v = parse_query(
        "V() :- Employee('Jane', 'Shipping', p), Employee(n, 'Shipping', '1234567')",
        &schema,
        &mut domain,
    )
    .unwrap();
    (s, v, domain)
}

/// The introduction's data-exchange scenario: Bob receives the
/// (name, department) view, Carol the (department, phone) view, and the
/// company wants to keep the (name, phone) association secret.
pub fn intro_collusion() -> (ConjunctiveQuery, ViewSet, Domain) {
    let schema = employee_schema();
    let mut domain = Domain::new();
    let v_bob = parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let v_carol = parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let s = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    (s, ViewSet::from_views(vec![v_bob, v_carol]), domain)
}

/// The manufacturing-exchange views of the introduction: detailed part data
/// for suppliers (V1), product features and prices for retailers (V2), labor
/// costs for the tax consultant (V3); the internal manufacturing cost is the
/// secret.
pub fn manufacturing_views() -> (ConjunctiveQuery, ViewSet, Domain) {
    let schema = crate::schemas::manufacturing_schema();
    let mut domain = Domain::new();
    let v1 = parse_query("V1(pr, pa, s) :- Part(pr, pa, s)", &schema, &mut domain).unwrap();
    let v2 = parse_query(
        "V2(pr, f, price) :- Product(pr, f, price)",
        &schema,
        &mut domain,
    )
    .unwrap();
    let v3 = parse_query("V3(pr, c) :- Labor(pr, op, c)", &schema, &mut domain).unwrap();
    let secret = parse_query("S(pr, c) :- ManufCost(pr, c)", &schema, &mut domain).unwrap();
    (secret, ViewSet::from_views(vec![v1, v2, v3]), domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::security::secure_for_all_distributions;
    use qvsec_data::Schema;

    #[test]
    fn table1_security_column_is_reproduced() {
        let schema = employee_schema();
        for row in table1() {
            let verdict =
                secure_for_all_distributions(&row.secret, &row.views, &schema, &row.domain)
                    .unwrap();
            assert_eq!(
                verdict.secure, row.secure,
                "row {} ({}) has the wrong verdict",
                row.id, row.description
            );
        }
    }

    #[test]
    fn worked_example_builders_produce_wellformed_queries() {
        let (s, v, _) = example_4_2();
        assert_eq!(s.arity(), 1);
        assert_eq!(v.arity(), 1);
        let (s, v, _) = example_4_3();
        assert_eq!(s.constants().len(), 1);
        assert_eq!(v.constants().len(), 1);
        let (q, _) = example_4_12();
        assert!(q.is_boolean());
        let (s, v, _) = section_2_1();
        assert!(s.is_boolean() && v.is_boolean());
        let (s, views, _) = intro_collusion();
        assert_eq!(s.arity(), 2);
        assert_eq!(views.len(), 2);
    }

    #[test]
    fn manufacturing_views_are_secure_for_the_cost_secret() {
        // The ManufCost relation is disjoint from the relations the views
        // publish, so the audit must report perfect security.
        let (secret, views, domain) = manufacturing_views();
        let schema: Schema = crate::schemas::manufacturing_schema();
        let verdict = secure_for_all_distributions(&secret, &views, &schema, &domain).unwrap();
        assert!(verdict.secure);
    }
}
