//! Multi-party collusion auditing (the first data-exchange scenario of the
//! introduction).
//!
//! Alice publishes view `V_i` to party `i`. Which coalitions of parties can,
//! by pooling their views, learn something about the secret `S`? Because
//! query-view security is closed under collusion (Theorem 4.5: `S | V̄` iff
//! `S | V_i` for every `i`), a coalition violates the secret iff at least one
//! of its members' views does individually — and the audit below reports
//! both the per-view verdicts and the resulting minimal unsafe coalitions.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::security::SecurityVerdict;
use qvsec::session::SessionReport;
use qvsec::Result;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Domain, Schema};
use std::sync::Arc;

/// The audit result for one named recipient/coalition.
#[derive(Debug, Clone)]
pub struct CoalitionReport {
    /// Names of the recipients in the coalition.
    pub members: Vec<String>,
    /// The security verdict for the union of their views.
    pub verdict: SecurityVerdict,
}

/// Audits every non-empty coalition of recipients. `views` associates a
/// recipient name with the view published to them. Coalitions are returned
/// in increasing size order.
pub fn collusion_audit(
    secret: &ConjunctiveQuery,
    views: &[(String, ConjunctiveQuery)],
    schema: &Schema,
    domain: &Domain,
) -> Result<Vec<CoalitionReport>> {
    let n = views.len();
    assert!(n <= 16, "collusion audit enumerates 2^n coalitions");
    // One engine across all 2^n coalitions: every view's critical-tuple set
    // is computed once and served from the engine's memo cache for each of
    // the 2^(n-1) coalitions it participates in.
    let engine = AuditEngine::builder(schema.clone(), domain.clone()).build();
    let requests: Vec<(Vec<String>, AuditRequest)> = (1u32..(1u32 << n))
        .map(|mask| {
            let members: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| views[i].0.clone())
                .collect();
            let coalition_views = ViewSet::from_views(
                (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| views[i].1.clone())
                    .collect(),
            );
            let request = AuditRequest::new(secret.clone(), coalition_views)
                .named(members.join("+"))
                .with_depth(AuditDepth::Exact);
            (members, request)
        })
        .collect();
    let audit_requests: Vec<AuditRequest> = requests.iter().map(|(_, r)| r.clone()).collect();
    let audited = engine.try_audit_batch(&audit_requests)?;
    let mut reports: Vec<CoalitionReport> = requests
        .into_iter()
        .zip(audited)
        .map(|((members, _), report)| CoalitionReport {
            members,
            verdict: report
                .security
                .expect("Exact-depth reports carry a security verdict"),
        })
        .collect();
    reports.sort_by_key(|r| r.members.len());
    Ok(reports)
}

/// The §6 collusion scenario as an incremental publication session: the
/// publisher releases the named views **one at a time**, asking before each
/// whether it is safe to *also* publish it given everything already out.
///
/// Returns one [`SessionReport`] per publication, in order. Step `k`'s
/// cumulative verdict equals the [`collusion_audit`] verdict of the
/// coalition `{views[0..=k]}` (Theorem 4.5 closure under collusion), and
/// every step after the first is served warm from the engine's compiled
/// artifacts — the report's cache counters say exactly how warm.
pub fn session_publication_audit(
    secret: &ConjunctiveQuery,
    views: &[(String, ConjunctiveQuery)],
    schema: &Schema,
    domain: &Domain,
) -> Result<Vec<SessionReport>> {
    let engine = Arc::new(AuditEngine::builder(schema.clone(), domain.clone()).build());
    let mut session = engine
        .open_session(secret.clone())
        .named(format!("collusion:{}", secret.name));
    let mut reports = Vec::with_capacity(views.len());
    for (who, view) in views {
        reports.push(session.publish_named(who.clone(), view.clone())?);
    }
    Ok(reports)
}

/// The serving-layer collusion scenario: `tenants` independent publishers
/// release the same view sequence through one shared
/// [`qvsec_serve::SessionRegistry`] — the multi-tenant shape of the §6
/// question ("is it safe for *this* tenant to also publish V?"), where
/// every tenant is its own adversary coalition accumulating views.
///
/// All tenants share one engine, so tenant `k`'s steps are served from the
/// artifacts tenants `< k` compiled; per-tenant verdicts are nevertheless
/// **identical** to a dedicated single-tenant session (asserted by the
/// tests here and measured by `bench_serve`). Returns each tenant's
/// reports in publication order, tenants sorted by id.
pub fn multi_tenant_publication_audit(
    secret: &ConjunctiveQuery,
    views: &[(String, ConjunctiveQuery)],
    schema: &Schema,
    domain: &Domain,
    tenants: usize,
) -> Result<Vec<(String, Vec<SessionReport>)>> {
    let engine = Arc::new(AuditEngine::builder(schema.clone(), domain.clone()).build());
    let registry = qvsec_serve::SessionRegistry::new(engine);
    let mut out = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let tenant = format!("tenant-{t:03}");
        let mut reports = Vec::with_capacity(views.len());
        for (who, view) in views {
            reports.push(
                registry
                    .publish(&tenant, Some(secret), Some(who.clone()), view.clone())
                    .expect("workload publications audit cleanly"),
            );
        }
        out.push((tenant, reports));
    }
    Ok(out)
}

/// The minimal unsafe coalitions: unsafe coalitions none of whose proper
/// subsets are unsafe.
pub fn minimal_unsafe_coalitions(reports: &[CoalitionReport]) -> Vec<&CoalitionReport> {
    let unsafe_sets: Vec<&CoalitionReport> = reports.iter().filter(|r| !r.verdict.secure).collect();
    unsafe_sets
        .iter()
        .filter(|r| {
            !unsafe_sets.iter().any(|other| {
                other.members.len() < r.members.len()
                    && other.members.iter().all(|m| r.members.contains(m))
            })
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::employee_schema;
    use qvsec_cq::parse_query;

    #[test]
    fn collusion_audit_of_the_introduction_scenario() {
        // Bob gets (name, department), Carol gets (department, phone), Dana
        // gets the management-only name list. Secret: (name, phone).
        let schema = employee_schema();
        let mut domain = Domain::new();
        let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = vec![
            (
                "bob".to_string(),
                parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
            (
                "carol".to_string(),
                parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
            (
                "dana".to_string(),
                parse_query("VDana(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap(),
            ),
        ];
        let reports = collusion_audit(&secret, &views, &schema, &domain).unwrap();
        assert_eq!(reports.len(), 7, "all non-empty coalitions are audited");
        // every coalition containing bob or carol is unsafe; dana alone...
        // note: even VDana(n) overlaps the secret on management employees'
        // names, so it is individually unsafe under perfect secrecy.
        for r in &reports {
            let expected_unsafe = r
                .members
                .iter()
                .any(|m| m == "bob" || m == "carol" || m == "dana");
            assert_eq!(
                !r.verdict.secure, expected_unsafe,
                "coalition {:?}",
                r.members
            );
        }
        let minimal = minimal_unsafe_coalitions(&reports);
        assert!(minimal.iter().all(|r| r.members.len() == 1));
    }

    #[test]
    fn session_steps_agree_with_coalition_audits() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = vec![
            (
                "bob".to_string(),
                parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
            (
                "carol".to_string(),
                parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
            (
                "dana".to_string(),
                parse_query("VDana(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap(),
            ),
        ];
        let steps = session_publication_audit(&secret, &views, &schema, &domain).unwrap();
        assert_eq!(steps.len(), 3);
        let coalitions = collusion_audit(&secret, &views, &schema, &domain).unwrap();
        for (k, step) in steps.iter().enumerate() {
            let members: Vec<String> = views[..=k].iter().map(|(w, _)| w.clone()).collect();
            let coalition = coalitions
                .iter()
                .find(|r| r.members == members)
                .expect("prefix coalition audited");
            assert_eq!(
                step.report.secure,
                Some(coalition.verdict.secure),
                "session step {} disagrees with the {:?} coalition",
                k + 1,
                members
            );
        }
        assert!(
            steps[1].cache.crit_cache_hits > 0 && steps[2].cache.crit_cache_hits > 0,
            "warm steps reuse crit sets"
        );
    }

    #[test]
    fn multi_tenant_reports_match_dedicated_sessions() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = vec![
            (
                "bob".to_string(),
                parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
            (
                "carol".to_string(),
                parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
        ];
        let tenants = multi_tenant_publication_audit(&secret, &views, &schema, &domain, 3).unwrap();
        assert_eq!(tenants.len(), 3);
        let dedicated = session_publication_audit(&secret, &views, &schema, &domain).unwrap();
        // Reports differ only in the session label baked into `name`.
        let unlabelled = |report: &qvsec::AuditReport| {
            let value = serde_json::to_value(report).unwrap();
            let serde_json::Value::Object(entries) = value else {
                panic!("reports serialize to objects")
            };
            let kept: Vec<_> = entries.into_iter().filter(|(k, _)| k != "name").collect();
            serde_json::to_string(&serde_json::Value::Object(kept)).unwrap()
        };
        for (tenant, reports) in &tenants {
            assert_eq!(reports.len(), views.len());
            for (step, expected) in reports.iter().zip(&dedicated) {
                assert_eq!(
                    unlabelled(&step.report),
                    unlabelled(&expected.report),
                    "{tenant} step {} diverged from a dedicated session",
                    step.step
                );
            }
        }
        // Tenants after the first ride the shared engine's warm caches.
        assert!(tenants[1].1[0].cache.any_reuse());
    }

    #[test]
    fn secure_views_produce_no_unsafe_coalitions() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let secret = parse_query("S(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let views = vec![
            (
                "mgmt".to_string(),
                parse_query("V1(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap(),
            ),
            (
                "sales".to_string(),
                parse_query("V2(n) :- Employee(n, 'Sales', p)", &schema, &mut domain).unwrap(),
            ),
        ];
        let reports = collusion_audit(&secret, &views, &schema, &domain).unwrap();
        assert!(reports.iter().all(|r| r.verdict.secure));
        assert!(minimal_unsafe_coalitions(&reports).is_empty());
    }

    #[test]
    fn collusion_closure_property_holds() {
        // Theorem 4.5: a coalition is unsafe iff some member is unsafe.
        let schema = employee_schema();
        let mut domain = Domain::new();
        let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = vec![
            (
                "safe".to_string(),
                parse_query(
                    "V1(n) :- Employee(n, 'Mgmt', x), x != x",
                    &schema,
                    &mut domain,
                )
                .unwrap(),
            ),
            (
                "unsafe".to_string(),
                parse_query("V2(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
            ),
        ];
        let reports = collusion_audit(&secret, &views, &schema, &domain).unwrap();
        for r in &reports {
            let member_unsafe = r.members.iter().any(|m| m == "unsafe");
            assert_eq!(!r.verdict.secure, member_unsafe);
        }
    }
}
