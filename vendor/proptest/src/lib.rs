//! Minimal, API-compatible stand-in for the slice of `proptest` this
//! workspace uses: the [`Strategy`] trait with `prop_map`, `Just`, tuple and
//! integer-range strategies, `collection::vec`, `bool::ANY`, weighted and
//! unweighted `prop_oneof!`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Compared to the real crate there is no shrinking and no persistent
//! failure file: each `#[test]` inside `proptest!` runs `cases` iterations
//! with a deterministic per-test random seed, so failures reproduce across
//! runs. That matches how the seed repository's property tests are used —
//! as randomized cross-validation of the paper's theorems.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `pred` accepts the value (bounded; panics if
    /// the predicate looks unsatisfiable).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy. Clonable (shared) so `prop_oneof!` results can
/// be reused across composite strategies the way the real crate allows.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter predicate never satisfied: {}", self.whence);
    }
}

/// A weighted union of strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives a deterministic seed from a test name and case index.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Builds the deterministic RNG for one test case (used by `proptest!`, which
/// cannot name the `rand` crate because downstream test crates may not depend
/// on it directly).
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name, case))
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// body runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $(#[test] fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng: $crate::TestRng =
                        $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(x in 0usize..10, pair in (1u32..5, 0i64..3)) {
            prop_assert!(x < 10);
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((0..3).contains(&pair.1));
        }

        #[test]
        fn oneof_and_vec_work(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn weighted_oneof_and_bool(b in crate::bool::ANY, w in prop_oneof![3 => Just("a"), 1 => Just("b")]) {
            let _ = b;
            prop_assert!(w == "a" || w == "b");
        }
    }

    #[test]
    fn prop_map_and_filter_compose() {
        use crate::{Strategy, TestRng};
        use rand::SeedableRng;
        let s = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x != 0);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v != 0);
        }
    }
}
