//! Minimal, API-compatible stand-in for the slice of `criterion` this
//! workspace's benches use: `Criterion`, `benchmark_group` (+
//! `sample_size`), `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then a fixed number of timed samples, and prints median and mean
//! per-iteration times. Good enough to compare hot paths locally; not a
//! substitute for the real crate's rigor.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named benchmark id, e.g. `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations, one per sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, first warming up, then recording `samples` samples of a
    /// batch of iterations each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for batches of >= ~1ms or
        // at least one iteration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.results.push(start.elapsed() / batch);
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {name:<55} (no samples)");
        return;
    }
    let mut sorted = results.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "bench {name:<55} median {median:>12?}   mean {mean:>12?}   ({} samples)",
        sorted.len()
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results);
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&id.to_string(), &b.results);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &b.results);
        self
    }

    /// Runs an input-parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into()), &b.results);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
