//! Minimal, API-compatible stand-in for the slice of `rayon` this workspace
//! uses: `slice.par_iter().map(f).collect::<Vec<_>>()` plus the
//! [`ThreadPoolBuilder::build_global`] thread-count override the bench
//! harnesses rely on (`bench_crit --threads N`).
//!
//! The implementation splits the input into one contiguous chunk per
//! worker and maps each chunk on a scoped `std::thread`, writing
//! results in place so output order matches input order — the property the
//! audit-batch API relies on.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Global worker-count override installed by [`ThreadPoolBuilder`]; 0 means
/// "use the hardware parallelism".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by the shim.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Error returned by [`ThreadPoolBuilder::build_global`]; the shim never
/// actually fails, the type exists for API compatibility with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`, reduced to the `num_threads` +
/// `build_global` calls the workspace uses. Unlike real rayon, rebuilding the
/// global pool is allowed (each call just replaces the worker-count override).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (hardware) parallelism.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; 0 restores hardware parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configured worker count as the global default used by
    /// every subsequent `par_iter` call.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Types with a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;

    /// A parallel iterator over references to the elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]; consume it with `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_map(self.items, &self.f).into_iter().collect()
    }
}

fn run_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut results;
        let mut start = 0usize;
        while start < n {
            let take = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let slice = &items[start..start + take];
            scope.spawn(move || {
                for (out, item) in head.iter_mut().zip(slice) {
                    *out = Some(f(item));
                }
            });
            start += take;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker thread filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_builder_overrides_and_restores_worker_count() {
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..101).collect::<Vec<_>>());
        crate::ThreadPoolBuilder::new().build_global().unwrap();
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn works_on_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
