//! Minimal JSON text layer for the vendored serde shim: parse JSON text into
//! [`Value`] trees, print them compact or pretty, and convert to/from any
//! type implementing the shim's `Serialize` / `Deserialize`.

use serde::json::Json;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed JSON value (re-export of the shim's data model).
pub type Value = Json;

/// Error raised by parsing or conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize().write_compact(&mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serializes a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Deserializes a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize(value)?)
}

/// Parses JSON text and deserializes the resulting tree.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's identifiers; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": []}}"#;
        let v = parse(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = parse("123456789012345678901234567").unwrap();
        assert_eq!(v, Json::Int(123456789012345678901234567i128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}
