//! The JSON-shaped data model shared by the `serde` and `serde_json` shims.

use crate::Error;
use std::fmt;

/// A JSON value. Integers are kept exact (up to `i128`) so rational
/// numerators/denominators round-trip bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The member of an object, or [`Json::Null`] when absent (which is how
    /// optional fields deserialize to `None`).
    pub fn field(&self, name: &str) -> &Json {
        match self {
            Json::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&Json::Null),
            _ => &Json::Null,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sole `(key, value)` entry of a single-key object (the encoding of
    /// data-carrying enum variants).
    pub fn single_entry(&self) -> Result<(&str, &Json), Error> {
        match self {
            Json::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::custom(format!(
                "expected single-key object, got {other:?}"
            ))),
        }
    }

    /// The payload of an array of exactly `n` elements.
    pub fn array_of_len(&self, n: usize) -> Result<&[Json], Error> {
        match self {
            Json::Array(items) if items.len() == n => Ok(items),
            other => Err(Error::custom(format!(
                "expected array of length {n}, got {other:?}"
            ))),
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// Writes compact JSON text into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes pretty-printed JSON text into `out` at the given indent level.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Json::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        // Ensure floats keep a decimal point so they re-parse as floats.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; emit null like serde_json does.
        out.push_str("null");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}
