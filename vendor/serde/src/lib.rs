//! Minimal, API-compatible stand-in for the `serde` crate.
//!
//! The build environment of this workspace has no access to a crate
//! registry, so the pieces of serde the workspace actually uses are
//! implemented here from scratch: the [`Serialize`] / [`Deserialize`]
//! traits, a JSON-shaped data model ([`json::Json`]), impls for the std
//! types the workspace serializes, and (via the sibling `serde_derive`
//! proc-macro crate) `#[derive(Serialize, Deserialize)]` with support for
//! `#[serde(skip)]`.
//!
//! The data model is deliberately JSON-only: `serialize` produces a
//! [`json::Json`] tree and `deserialize` consumes one. The sibling
//! `serde_json` crate supplies the text layer. Derived formats match
//! serde's externally-tagged defaults (unit enum variants as strings,
//! data-carrying variants as single-key objects, newtype structs
//! transparent), so reports stay readable and stable.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::Json;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Error produced by deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON-shaped data model.
pub trait Serialize {
    /// Converts `self` into a [`Json`] tree.
    fn serialize(&self) -> Json;
}

/// Deserialization from the JSON-shaped data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Json`] tree.
    fn deserialize(value: &Json) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range for {}", stringify!($t)))),
                    Json::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Float(f) => Ok(*f),
            Json::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        let s = String::deserialize(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Json {
        match self {
            Some(v) => v.serialize(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Json {
        let mut entries: Vec<(String, Json)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Json {
                Json::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Json) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Json::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {LEN}, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Json {
    fn serialize(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn deserialize(value: &Json) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
