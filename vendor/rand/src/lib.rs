//! Minimal, API-compatible stand-in for the parts of `rand` 0.8 this
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is an xoshiro256++ generator seeded through SplitMix64 — not
//! the ChaCha12 of the real crate, but deterministic, fast and more than
//! uniform enough for Monte-Carlo estimation and workload generation.

/// Sampling of a uniformly distributed value (the role of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws a uniform sample from the full value range (for floats: `[0, 1)`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T` (for floats: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased sampling of an integer in `[0, bound)` by rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<i128> for std::ops::Range<i128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end.wrapping_sub(self.start) as u128;
        assert!(
            span <= u64::MAX as u128,
            "i128 range span too large for shim"
        );
        self.start + uniform_below(rng, span as u64) as i128
    }
}

impl SampleRange<i128> for std::ops::RangeInclusive<i128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let span = end.wrapping_sub(start) as u128 + 1;
        assert!(
            span <= u64::MAX as u128,
            "i128 range span too large for shim"
        );
        start + uniform_below(rng, span as u64) as i128
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&m));
        }
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_rate_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
