//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` —
//! the build environment has no registry access). Supports the shapes this
//! workspace uses:
//!
//! * structs with named fields (including private ones and `#[serde(skip)]`,
//!   which omits the field on serialize and fills it with `Default::default()`
//!   on deserialize),
//! * tuple structs (single-field newtypes serialize transparently, wider
//!   ones as arrays),
//! * enums with unit, tuple and struct variants, in serde's externally
//!   tagged encoding (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generic types are not supported (none of the workspace's serialized
//! types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token stream into top-level "chunks" separated by commas that sit
/// at angle-bracket depth zero (so `Vec<(A, B)>` stays one chunk).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Whether a `serde(...)` attribute's argument list contains the **bare**
/// item `default`. Substring matching would also fire on the unsupported
/// `default = "path"` form (silently substituting `Default::default()` for
/// the named function) or on `default` inside a string literal; those panic
/// instead, so unsupported spellings fail the build loudly.
fn has_bare_default(attr_text: &str) -> bool {
    let inner = match (attr_text.find('('), attr_text.rfind(')')) {
        (Some(open), Some(close)) if open < close => &attr_text[open + 1..close],
        _ => return false,
    };
    let mut found = false;
    for item in inner.split(',') {
        let item = item.trim();
        if item == "default" {
            found = true;
        } else if item.starts_with("default") {
            panic!("serde shim: only the bare `#[serde(default)]` is supported, got `{item}`");
        }
    }
    found
}

/// Consumes leading attributes from `tokens[i..]`, returning whether one of
/// them was `#[serde(skip)]` (or `#[serde(skip_serializing, ...)]`-style —
/// any serde attribute mentioning `skip`) and whether one was the bare
/// `#[serde(default)]` (missing fields deserialize to `Default::default()`
/// instead of erroring; the field still serializes normally).
fn eat_attributes(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while *i < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        // `#` is followed by a bracket group: `[...]`.
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let text = g.stream().to_string();
                if text.starts_with("serde") && text.contains("skip") {
                    skip = true;
                }
                if text.starts_with("serde") && has_bare_default(&text) {
                    default = true;
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
    (skip, default)
}

/// Consumes an optional visibility (`pub`, `pub(crate)`, ...) from
/// `tokens[i..]`.
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    for chunk in split_top_level(&tokens) {
        if chunk.is_empty() {
            continue;
        }
        let mut i = 0;
        let (skip, default) = eat_attributes(&chunk, &mut i);
        eat_visibility(&chunk, &mut i);
        if let Some(TokenTree::Ident(id)) = chunk.get(i) {
            fields.push(Field {
                name: id.to_string(),
                skip,
                default,
            });
        }
    }
    fields
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter(|c| !c.is_empty())
        .count()
}

fn parse_enum_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for chunk in split_top_level(&tokens) {
        if chunk.is_empty() {
            continue;
        }
        let mut i = 0;
        eat_attributes(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        i += 1;
        let shape = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantShape::Tuple(parse_tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attributes(&tokens, &mut i);
    eat_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct or enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_enum_variants(g.stream()),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "obj.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::json::Json {{
                        let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::json::Json)> = ::std::vec::Vec::new();
                        {pushes}
                        ::serde::json::Json::Object(obj)
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize(&self) -> ::serde::json::Json {{
                    ::serde::Serialize::serialize(&self.0)
                }}
            }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::json::Json {{
                        ::serde::json::Json::Array(vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize(&self) -> ::serde::json::Json {{
                    ::serde::json::Json::Null
                }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Json::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let sers: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::json::Json::Array(vec![{}])", sers.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::json::Json::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::json::Json::Object(vec![(\"{vn}\".to_string(), ::serde::json::Json::Object(vec![{pushes}]))]),\n",
                            binds = binders.join(", "),
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize(&self) -> ::serde::json::Json {{
                        match self {{
                            {arms}
                        }}
                    }}
                }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else if f.default {
                        format!(
                            "{n}: {{ let v = value.field(\"{n}\"); if v.is_null() {{ ::std::default::Default::default() }} else {{ ::serde::Deserialize::deserialize(v)? }} }}",
                            n = f.name
                        )
                    } else {
                        format!(
                            "{n}: ::serde::Deserialize::deserialize(value.field(\"{n}\"))?",
                            n = f.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::Error> {{
                        ::std::result::Result::Ok({name} {{ {} }})
                    }}
                }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn deserialize(value: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))
                }}
            }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::Error> {{
                        let items = value.array_of_len({arity})?;
                        ::std::result::Result::Ok({name}({}))
                    }}
                }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn deserialize(_value: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?))"
                            )
                        } else {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let items = inner.array_of_len({arity})?; ::std::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default()", f.name)
                                } else if f.default {
                                    format!(
                                        "{n}: {{ let v = inner.field(\"{n}\"); if v.is_null() {{ ::std::default::Default::default() }} else {{ ::serde::Deserialize::deserialize(v)? }} }}",
                                        n = f.name
                                    )
                                } else {
                                    format!(
                                        "{n}: ::serde::Deserialize::deserialize(inner.field(\"{n}\"))?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(value: &::serde::json::Json) -> ::std::result::Result<Self, ::serde::Error> {{
                        if let ::std::option::Option::Some(s) = value.as_str() {{
                            return match s {{
                                {unit_arms}
                                other => ::std::result::Result::Err(::serde::Error::custom(
                                    format!(\"unknown variant `{{other}}` of {name}\"))),
                            }};
                        }}
                        let (key, inner) = value.single_entry()?;
                        match key {{
                            {data_arms}
                            other => ::std::result::Result::Err(::serde::Error::custom(
                                format!(\"unknown variant `{{other}}` of {name}\"))),
                        }}
                    }}
                }}"
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error token stream"),
    }
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
