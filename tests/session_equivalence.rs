//! Session ≡ stateless-engine equivalence.
//!
//! An [`AuditSession`] is an *optimization layer*: its cumulative verdicts
//! must be byte-identical to a fresh engine auditing the same published
//! prefix from scratch. These properties pin that down on randomly
//! generated view sequences, together with the snapshot/restore round-trip
//! (cache counters included) and the correctness of cross-domain-size
//! class-verdict reuse.

use proptest::prelude::*;
use qvsec::critical::critical_tuples;
use qvsec::engine::{AuditDepth, AuditEngine, AuditOptions, AuditRequest};
use qvsec::CompiledArtifacts;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

/// Random view text over R/2 (same shape as the core crate's proptests).
fn view_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        let head_var = atoms
            .iter()
            .flat_map(|a| {
                a.trim_start_matches("R(")
                    .trim_end_matches(')')
                    .split(',')
                    .map(|s| s.trim().to_string())
            })
            .find(|t| t.starts_with('x'));
        match (boolean, head_var) {
            (false, Some(v)) => format!("Q({v}) :- {body}"),
            _ => format!("Q() :- {body}"),
        }
    })
}

fn prob_engine(schema: &Schema, domain: &Domain) -> AuditEngine {
    let space = TupleSpace::full(schema, domain).unwrap();
    AuditEngine::builder(schema.clone(), domain.clone())
        .dictionary(Dictionary::half(space))
        .default_depth(AuditDepth::Probabilistic)
        .build()
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Each session step's cumulative report is byte-identical to a fresh
    // engine running `audit_batch` over the same prefix.
    #[test]
    fn session_verdicts_equal_fresh_engine_prefix_batches(
        view_texts in proptest::collection::vec(view_text(), 1..4)
    ) {
        let schema = schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let secret = parse("S(x0, x1) :- R(x0, x1)", &schema, &mut domain);
        let views: Vec<ConjunctiveQuery> = view_texts
            .iter()
            .map(|t| parse(t, &schema, &mut domain))
            .collect();

        let engine = Arc::new(prob_engine(&schema, &domain));
        let mut session = engine.open_session(secret.clone()).named("eq");
        let mut step_reports = Vec::new();
        for v in &views {
            step_reports.push(session.publish(v.clone()).unwrap());
        }

        let fresh = prob_engine(&schema, &domain);
        let requests: Vec<AuditRequest> = (0..views.len())
            .map(|k| AuditRequest {
                name: format!("eq#{}", k + 1),
                secret: secret.clone(),
                views: ViewSet::from_views(views[..=k].to_vec()),
                options: AuditOptions::default(),
            })
            .collect();
        let baseline = fresh.try_audit_batch(&requests).unwrap();
        for (k, (step, base)) in step_reports.iter().zip(&baseline).enumerate() {
            prop_assert_eq!(
                serde_json::to_string(&step.report).unwrap(),
                serde_json::to_string(base).unwrap(),
                "session step {} != stateless baseline for views {:?}",
                k + 1,
                view_texts
            );
        }
    }

    // snapshot() → mutate → restore() → snapshot() reproduces the captured
    // state exactly, session-cumulative cache counters included, and the
    // replayed steps reach the same cumulative verdicts.
    #[test]
    fn snapshot_restore_round_trips_and_replays_identically(
        prefix in proptest::collection::vec(view_text(), 1..3),
        speculative in proptest::collection::vec(view_text(), 1..3)
    ) {
        let schema = schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let secret = parse("S(x0, x1) :- R(x0, x1)", &schema, &mut domain);
        let prefix: Vec<ConjunctiveQuery> =
            prefix.iter().map(|t| parse(t, &schema, &mut domain)).collect();
        let speculative: Vec<ConjunctiveQuery> =
            speculative.iter().map(|t| parse(t, &schema, &mut domain)).collect();

        let engine = Arc::new(prob_engine(&schema, &domain));
        let mut session = engine.open_session(secret).named("spec");
        for v in &prefix {
            session.publish(v.clone()).unwrap();
        }
        let snap = session.snapshot();
        prop_assert_eq!(snap.views_published(), prefix.len());

        let mut speculative_reports = Vec::new();
        for v in &speculative {
            speculative_reports.push(session.publish(v.clone()).unwrap());
        }
        session.restore(&snap);
        prop_assert_eq!(
            serde_json::to_string(&session.snapshot()).unwrap(),
            serde_json::to_string(&snap).unwrap(),
            "restore must round-trip the snapshot, cache counters included"
        );

        // Replaying the speculative branch reaches identical cumulative
        // reports (the engine's artifact caches are append-only, so the
        // replay is warm — but transparently so).
        for (v, earlier) in speculative.iter().zip(&speculative_reports) {
            let replay = session.publish(v.clone()).unwrap();
            prop_assert_eq!(
                serde_json::to_string(&replay.report).unwrap(),
                serde_json::to_string(&earlier.report).unwrap()
            );
        }
    }

    // Cross-domain-size class-verdict reuse is transparent: a query's crit
    // set over a grown domain, derived from cached class verdicts, equals
    // the freshly computed set.
    #[test]
    fn class_verdict_reuse_is_transparent_across_domain_sizes(
        text in view_text(),
        extra in 1usize..4
    ) {
        let schema = schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse(&text, &schema, &mut domain);
        let artifacts = CompiledArtifacts::new();
        let small = artifacts.crit(&q, &domain, 100_000).unwrap();
        prop_assert_eq!(&*small, &critical_tuples(&q, &domain).unwrap());

        let mut grown = domain.clone();
        for i in 0..extra {
            grown.add(&format!("g{i}"));
        }
        let big = artifacts.crit(&q, &grown, 100_000).unwrap();
        prop_assert_eq!(
            &*big,
            &critical_tuples(&q, &grown).unwrap(),
            "class-verdict reuse changed the grown-domain crit set for {}",
            text
        );
    }
}
