//! Integration test: the data-exchange scenarios of the introduction, run
//! end to end through the workload builders, the analyzer and the collusion
//! audit.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::practical::{practical_security, PracticalVerdict};
use qvsec::security::secure_for_all_distributions;
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio};
use qvsec_prob::lineage::support_space;
use qvsec_workload::paper::{intro_collusion, manufacturing_views, section_2_1};
use qvsec_workload::scenarios::{collusion_audit, minimal_unsafe_coalitions};
use qvsec_workload::schemas::{employee_schema, manufacturing_schema};

#[test]
fn manufacturing_exchange_is_safe_for_the_cost_secret() {
    let schema = manufacturing_schema();
    let (secret, views, domain) = manufacturing_views();
    let named: Vec<(String, qvsec_cq::ConjunctiveQuery)> = views
        .iter()
        .cloned()
        .zip(["suppliers", "retailers", "tax"])
        .map(|(v, who)| (who.to_string(), v))
        .collect();
    let reports = collusion_audit(&secret, &named, &schema, &domain).unwrap();
    assert_eq!(reports.len(), 7);
    assert!(reports.iter().all(|r| r.verdict.secure));
    assert!(minimal_unsafe_coalitions(&reports).is_empty());
}

#[test]
fn manufacturing_exchange_is_unsafe_for_a_labor_cost_secret() {
    // If the secret is the labor cost itself, the tax consultant's view
    // (and any coalition containing them) discloses it.
    let schema = manufacturing_schema();
    let (_, views, mut domain) = manufacturing_views();
    let secret = parse_query("S(pr, c) :- Labor(pr, op, c)", &schema, &mut domain).unwrap();
    let named: Vec<(String, qvsec_cq::ConjunctiveQuery)> = views
        .iter()
        .cloned()
        .zip(["suppliers", "retailers", "tax"])
        .map(|(v, who)| (who.to_string(), v))
        .collect();
    let reports = collusion_audit(&secret, &named, &schema, &domain).unwrap();
    for r in &reports {
        let has_tax = r.members.iter().any(|m| m == "tax");
        assert_eq!(!r.verdict.secure, has_tax, "coalition {:?}", r.members);
    }
    let minimal = minimal_unsafe_coalitions(&reports);
    assert_eq!(minimal.len(), 1);
    assert_eq!(minimal[0].members, vec!["tax".to_string()]);
}

#[test]
fn bob_and_carol_collusion_is_detected_and_quantified() {
    let schema = employee_schema();
    let (secret, views, domain) = intro_collusion();
    let verdict = secure_for_all_distributions(&secret, &views, &schema, &domain).unwrap();
    assert!(!verdict.secure);

    // quantify over a tiny dictionary: the collusion leaks strictly more than
    // the name-only view of Table 1 row 3
    let mut d = domain.clone();
    d.pad_to(2);
    let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&secret];
    queries.extend(views.iter());
    let space = support_space(&queries, &d, 1 << 12).unwrap();
    let dict = Dictionary::uniform(space, Ratio::new(1, 2)).unwrap();
    let analysis = AuditEngine::builder(schema, d)
        .dictionary(dict)
        .default_depth(AuditDepth::Probabilistic)
        .build()
        .audit(&AuditRequest::new(secret.clone(), views.clone()))
        .unwrap();
    assert_eq!(analysis.secure, Some(false));
    assert!(analysis.leakage.as_ref().unwrap().max_leak > Ratio::ZERO);
    assert_eq!(
        analysis.totally_disclosed,
        Some(false),
        "the association is not fully determined"
    );
}

#[test]
fn section_2_1_disclosure_is_detected_by_every_layer() {
    let schema = employee_schema();
    let (secret, view, domain) = section_2_1();
    let views = ViewSet::single(view.clone());
    // criterion
    assert!(
        !secure_for_all_distributions(&secret, &views, &schema, &domain)
            .unwrap()
            .secure
    );
    // statistics over the support dictionary: the posterior must exceed the prior
    let space = support_space(&[&secret, &view], &domain, 1 << 12).unwrap();
    let dict = Dictionary::uniform(space, Ratio::new(1, 3)).unwrap();
    let analysis = AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .default_depth(AuditDepth::Probabilistic)
        .build()
        .audit(&AuditRequest::new(secret.clone(), views.clone()))
        .unwrap();
    let report = analysis.independence.unwrap();
    assert!(!report.independent);
    let worst = report.worst_violation().unwrap();
    assert!(worst.posterior > worst.prior);
}

#[test]
fn practical_security_reclassifies_the_minute_disclosures() {
    // Under the Section 6.2 expected-size model, the "is this specific person
    // in the database" secret is practically secure with respect to the
    // department-membership view, even though it fails perfect secrecy.
    let mut schema = qvsec_data::Schema::new();
    schema.add_relation("Employee", &["name", "department", "phone"]);
    let mut domain = Domain::new();
    let secret = parse_query("S() :- Employee('alice', 'HR', 'p1')", &schema, &mut domain).unwrap();
    let view = parse_query("V() :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
    assert!(
        !secure_for_all_distributions(&secret, &ViewSet::single(view.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    match practical_security(&secret, &view, &schema, 50.0).unwrap() {
        PracticalVerdict::PracticallySecure => {}
        other => panic!("expected practical security, got {other:?}"),
    }
}
