//! Crash-safe rehydration equivalence.
//!
//! A durable `SessionRegistry` is an *availability layer*: killing the
//! process after any prefix of a request script and restarting it over the
//! same store must answer the remainder of the script byte-identically to
//! a process that never died — verdicts, cache counters, and registry
//! stats included. These properties pin that down on randomly generated
//! publish/candidate/snapshot/restore scripts (kill-and-rehydrate at
//! every prefix), repeat the exercise against the on-disk log store, and
//! check that a torn final journal record (a crash mid-append) recovers
//! to the last whole record so the client can simply retry.

use proptest::prelude::*;
use qvsec::engine::AuditEngine;
use qvsec_data::{Domain, Schema};
use qvsec_serve::protocol::handle_request;
use qvsec_serve::{RegistryConfig, SessionRegistry};
use qvsec_store::{LogStore, MemStore, StoreBackend, DEFAULT_COMPACT_THRESHOLD};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    let mut d = Domain::new();
    d.add("a");
    d.add("b");
    d
}

/// A fresh scratch directory for an on-disk store (the store crate's own
/// helper is test-private, so the pattern is repeated here).
fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("qvsec-persist-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A registry whose engine and tenant journal share `store` — the shape
/// `qvsec-cli serve --store` builds.
fn registry_over(store: &Arc<dyn StoreBackend>) -> SessionRegistry {
    let engine = Arc::new(
        AuditEngine::builder(schema(), domain())
            .store(Arc::clone(store))
            .build(),
    );
    SessionRegistry::with_store(engine, RegistryConfig::default(), Arc::clone(store))
        .expect("replay from store")
}

fn log_store(dir: &std::path::Path) -> Arc<dyn StoreBackend> {
    Arc::new(LogStore::open(dir, DEFAULT_COMPACT_THRESHOLD).expect("open log store"))
}

fn respond(registry: &SessionRegistry, line: &str) -> String {
    let (response, _shutdown) = handle_request(registry, line);
    serde_json::to_string(&response).expect("responses serialize")
}

/// Random view text over R/2 (same shape as `session_equivalence.rs`),
/// with the head renamed per pool slot so scripts publish distinct names.
fn view_text(slot: usize) -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(
        move |(atoms, boolean)| {
            let body = atoms.join(", ");
            let head_var = atoms
                .iter()
                .flat_map(|a| {
                    a.trim_start_matches("R(")
                        .trim_end_matches(')')
                        .split(',')
                        .map(|s| s.trim().to_string())
                })
                .find(|t| t.starts_with('x'));
            match (boolean, head_var) {
                (false, Some(v)) => format!("V{slot}({v}) :- {body}"),
                _ => format!("V{slot}() :- {body}"),
            }
        },
    )
}

fn view_pool() -> impl Strategy<Value = Vec<String>> {
    (view_text(0), view_text(1), view_text(2)).prop_map(|(a, b, c)| vec![a, b, c])
}

/// One raw script step: (tenant slot, op kind, view slot, label slot).
type RawOp = (usize, usize, usize, usize);

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((0..2usize, 0..4usize, 0..3usize, 0..2usize), 1..5)
}

const SECRET: &str = "S(x) :- R(x, y)";
const TENANTS: [&str; 2] = ["alice", "bravo"];
const LABELS: [&str; 2] = ["base", "mid"];

/// Renders raw ops into an all-succeeding NDJSON request script: both
/// tenants open first, and a `restore` to a label the tenant never
/// snapshotted becomes a `snapshot` (failed requests are deliberately not
/// journaled, so only committed scripts are restart-equivalent). Ends with
/// `stats` so registry-wide counters join the byte comparison.
fn render_script(views: &[String], ops: &[RawOp]) -> Vec<String> {
    let mut lines: Vec<String> = TENANTS
        .iter()
        .map(|t| format!(r#"{{"op": "open", "tenant": "{t}", "secret": "{SECRET}"}}"#))
        .collect();
    let mut snapped: [HashSet<usize>; 2] = [HashSet::new(), HashSet::new()];
    for &(t, kind, v, l) in ops {
        let tenant = TENANTS[t];
        let label = LABELS[l];
        let line = match kind {
            0 => format!(
                r#"{{"op": "publish", "tenant": "{tenant}", "view": "{}"}}"#,
                views[v]
            ),
            1 => format!(
                r#"{{"op": "candidate", "tenant": "{tenant}", "view": "{}"}}"#,
                views[v]
            ),
            3 if snapped[t].contains(&l) => {
                format!(r#"{{"op": "restore", "tenant": "{tenant}", "label": "{label}"}}"#)
            }
            _ => {
                snapped[t].insert(l);
                format!(r#"{{"op": "snapshot", "tenant": "{tenant}", "label": "{label}"}}"#)
            }
        };
        lines.push(line);
    }
    lines.push(r#"{"op": "stats"}"#.to_string());
    lines
}

/// Runs `lines` end to end on one registry over `store`.
fn run_uninterrupted(store: &Arc<dyn StoreBackend>, lines: &[String]) -> Vec<String> {
    let registry = registry_over(store);
    lines.iter().map(|l| respond(&registry, l)).collect()
}

/// Runs `lines`, killing the process after `k` requests: the first
/// registry is dropped without ceremony and a second one rehydrates from
/// the same store to answer the rest. Returns all responses in order.
fn run_killed_at(store: &Arc<dyn StoreBackend>, lines: &[String], k: usize) -> Vec<String> {
    let mut responses = Vec::with_capacity(lines.len());
    {
        let registry = registry_over(store);
        for line in &lines[..k] {
            responses.push(respond(&registry, line));
        }
    }
    let rehydrated = registry_over(store);
    for line in &lines[k..] {
        responses.push(respond(&rehydrated, line));
    }
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Kill-and-rehydrate at *every* prefix of a random script answers the
    // whole script byte-identically to a process that never died.
    #[test]
    fn rehydration_at_every_prefix_is_byte_identical(
        views in view_pool(),
        ops in raw_ops(),
    ) {
        let lines = render_script(&views, &ops);
        let baseline_store: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let baseline = run_uninterrupted(&baseline_store, &lines);
        for k in 0..=lines.len() {
            let store: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
            let responses = run_killed_at(&store, &lines, k);
            prop_assert_eq!(
                &responses, &baseline,
                "killed after {} of {} requests", k, lines.len()
            );
        }
    }
}

// The same every-prefix property against the on-disk log store: each kill
// drops every handle (journal writes go straight to the file, as a SIGKILL
// would leave them) and the restart re-reads the directory from scratch.
#[test]
fn rehydration_from_disk_at_every_prefix_is_byte_identical() {
    let views = vec![
        "V0(x0) :- R(x0, y0)".to_string(),
        "V1(x0) :- R(x0, 'a')".to_string(),
        "V2() :- R('a', 'b')".to_string(),
    ];
    let ops: Vec<RawOp> = vec![
        (0, 0, 0, 0), // alice publishes V0
        (1, 0, 1, 0), // bravo publishes V1
        (0, 2, 0, 1), // alice snapshots "mid"
        (0, 1, 2, 0), // alice audits candidate V2
        (0, 3, 0, 1), // alice restores "mid"
        (1, 0, 2, 0), // bravo publishes V2
    ];
    let lines = render_script(&views, &ops);
    let baseline_dir = scratch_dir("disk-baseline");
    let baseline = run_uninterrupted(&log_store(&baseline_dir), &lines);
    for k in 0..=lines.len() {
        let dir = scratch_dir("disk-prefix");
        let responses = {
            let store = log_store(&dir);
            let mut responses = Vec::new();
            {
                let registry = registry_over(&store);
                for line in &lines[..k] {
                    responses.push(respond(&registry, line));
                }
            }
            drop(store); // the crash drops every handle to the directory
            let rehydrated = registry_over(&log_store(&dir));
            for line in &lines[k..] {
                responses.push(respond(&rehydrated, line));
            }
            responses
        };
        assert_eq!(
            responses,
            baseline,
            "killed after {k} of {} requests",
            lines.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&baseline_dir);
}

// A crash mid-append leaves a torn final journal record. Reopening the
// store discards it, the registry replays the intact prefix, and a client
// that retries its unacknowledged request gets a response byte-identical
// to the one the dead process would have sent — stats included.
#[test]
fn a_torn_final_journal_record_recovers_to_a_retryable_prefix() {
    let script = [
        format!(r#"{{"op": "open", "tenant": "alice", "secret": "{SECRET}"}}"#),
        r#"{"op": "publish", "tenant": "alice", "view": "V0(x0) :- R(x0, y0)"}"#.to_string(),
        r#"{"op": "candidate", "tenant": "alice", "view": "V1() :- R('a', y0)"}"#.to_string(),
        // The final request is snapshot-only, so its artifacts were never
        // flushed early: the only durable trace is the journal record the
        // crash tears.
        r#"{"op": "snapshot", "tenant": "alice", "label": "base"}"#.to_string(),
    ];
    let stats_line = r#"{"op": "stats"}"#;

    let baseline_dir = scratch_dir("torn-baseline");
    let (baseline, baseline_stats) = {
        let registry = registry_over(&log_store(&baseline_dir));
        let responses: Vec<String> = script.iter().map(|l| respond(&registry, l)).collect();
        let stats = respond(&registry, stats_line);
        (responses, stats)
    };

    let dir = scratch_dir("torn");
    {
        let registry = registry_over(&log_store(&dir));
        for line in &script {
            respond(&registry, line);
        }
    }
    // Tear the final journal record: the crash wrote its length header but
    // not the full payload.
    let journal_path = dir.join("registry%2fjournal.log");
    let full = std::fs::read(&journal_path).expect("journal file exists");
    std::fs::write(&journal_path, &full[..full.len() - 1]).expect("truncate journal");

    let rehydrated = registry_over(&log_store(&dir));
    // The retried final request answers exactly as the dead process would
    // have, and afterwards the registries are indistinguishable.
    assert_eq!(
        respond(&rehydrated, script.last().unwrap()),
        *baseline.last().unwrap()
    );
    assert_eq!(respond(&rehydrated, stats_line), baseline_stats);

    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
