//! Integration test: the Appendix A reduction from 3-CNF (in)validity to
//! tuple (non-)criticality, cross-validated against the naive solver on a
//! randomized family of formulas.

use qvsec::cnf::{ForallExists3Cnf, Literal};
use qvsec::hardness::{reduce, tuple_is_critical};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_clause<R: Rng>(num_vars: usize, rng: &mut R) -> Vec<Literal> {
    let width = rng.gen_range(1..=3usize);
    (0..width)
        .map(|_| {
            let idx = rng.gen_range(0..num_vars);
            if rng.gen_bool(0.5) {
                Literal::y(idx)
            } else {
                Literal::not_y(idx)
            }
        })
        .collect()
}

#[test]
fn reduction_agrees_with_the_naive_solver_on_random_formulas() {
    let mut rng = StdRng::seed_from_u64(20260613);
    let mut satisfiable_seen = 0usize;
    let mut unsatisfiable_seen = 0usize;
    for _ in 0..40 {
        let num_vars = rng.gen_range(1..=3usize);
        let num_clauses = rng.gen_range(1..=5usize);
        let clauses: Vec<Vec<Literal>> = (0..num_clauses)
            .map(|_| random_clause(num_vars, &mut rng))
            .collect();
        let formula = ForallExists3Cnf::existential(num_vars, clauses);
        let sat = formula.is_satisfiable();
        if sat {
            satisfiable_seen += 1;
        } else {
            unsatisfiable_seen += 1;
        }
        let critical = tuple_is_critical(&formula).unwrap();
        assert_eq!(
            critical, !sat,
            "reduction disagrees with the solver on {formula}"
        );
    }
    assert!(
        satisfiable_seen > 0,
        "the random family must include satisfiable formulas"
    );
    assert!(
        unsatisfiable_seen > 0,
        "the random family must include unsatisfiable formulas"
    );
}

#[test]
fn reduction_produces_the_documented_gadget_shapes() {
    let formula = ForallExists3Cnf::existential(
        3,
        vec![
            vec![Literal::y(0), Literal::not_y(1), Literal::y(2)],
            vec![Literal::not_y(0), Literal::y(1)],
        ],
    );
    let inst = reduce(&formula).unwrap();
    // the domain is exactly {0, 1, 2, 3}
    assert_eq!(inst.domain.len(), 4);
    // the distinguished tuple repeats its last value: R(0, 1, 2, 3, 3)
    assert_eq!(inst.tuple.values[3], inst.tuple.values[4]);
    // per existential variable: one By relation with 3 subgoals and one Y
    // relation with 3 subgoals
    for i in 0..3 {
        assert!(inst.schema.relation_by_name(&format!("By{i}")).is_some());
        assert!(inst.schema.relation_by_name(&format!("Y{i}")).is_some());
    }
    // clause 1 has 3 distinct variables: 1 z-row + 7 satisfying rows
    let c0 = inst.schema.relation_by_name("C0").unwrap();
    assert_eq!(
        inst.query.atoms.iter().filter(|a| a.relation == c0).count(),
        8
    );
    // clause 2 has 2 distinct variables: 1 z-row + 3 satisfying rows
    let c1 = inst.schema.relation_by_name("C1").unwrap();
    assert_eq!(
        inst.query.atoms.iter().filter(|a| a.relation == c1).count(),
        4
    );
    assert!(inst.query.validate().is_ok());
}

#[test]
fn pigeonhole_style_unsatisfiable_formula_yields_a_critical_tuple() {
    // (Y0 ∨ Y1) ∧ (¬Y0 ∨ Y1) ∧ (Y0 ∨ ¬Y1) ∧ (¬Y0 ∨ ¬Y1) is unsatisfiable.
    let formula = ForallExists3Cnf::existential(
        2,
        vec![
            vec![Literal::y(0), Literal::y(1)],
            vec![Literal::not_y(0), Literal::y(1)],
            vec![Literal::y(0), Literal::not_y(1)],
            vec![Literal::not_y(0), Literal::not_y(1)],
        ],
    );
    assert!(!formula.is_satisfiable());
    assert!(tuple_is_critical(&formula).unwrap());
}

#[test]
fn horn_like_satisfiable_formula_yields_a_non_critical_tuple() {
    // implication chain Y0 → Y1 → Y2 with Y0 forced true: satisfiable.
    let formula = ForallExists3Cnf::existential(
        3,
        vec![
            vec![Literal::y(0)],
            vec![Literal::not_y(0), Literal::y(1)],
            vec![Literal::not_y(1), Literal::y(2)],
        ],
    );
    assert!(formula.is_satisfiable());
    assert!(!tuple_is_critical(&formula).unwrap());
}
