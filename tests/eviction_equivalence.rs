//! Bounded-cache ≡ unbounded-cache equivalence.
//!
//! The acceptance criterion of the serving layer's evicting caches: **with
//! any byte budget**, every engine/session verdict is byte-identical to the
//! unbounded-cache baseline — eviction may cost recomputation, never
//! correctness. Random view sequences are audited through engines with
//! random budgets (including absurdly tiny ones that evict on every
//! insert), and the snapshot/restore regression pins the specific
//! interaction the ISSUE calls out: a restored session must re-derive
//! evicted artifacts transparently.

use proptest::prelude::*;
use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

/// Random view text over R/2.
fn view_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        let head_var = atoms
            .iter()
            .flat_map(|a| {
                a.trim_start_matches("R(")
                    .trim_end_matches(')')
                    .split(',')
                    .map(|s| s.trim().to_string())
            })
            .find(|t| t.starts_with('x'));
        match (boolean, head_var) {
            (false, Some(v)) => format!("Q({v}) :- {body}"),
            _ => format!("Q() :- {body}"),
        }
    })
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

fn engine(schema: &Schema, domain: &Domain, budget: Option<usize>) -> AuditEngine {
    let space = TupleSpace::full(schema, domain).unwrap();
    let mut builder = AuditEngine::builder(schema.clone(), domain.clone())
        .dictionary(Dictionary::half(space))
        .default_depth(AuditDepth::Probabilistic);
    if let Some(total) = budget {
        builder = builder.cache_budget_bytes(total);
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_byte_budget_yields_byte_identical_audit_reports(
        texts in proptest::collection::vec(view_text(), 1..5),
        budget in prop_oneof![
            2 => (1usize..64).prop_map(Some),          // evicts constantly
            2 => (1024usize..65536).prop_map(Some),    // evicts sometimes
            1 => Just(None),                           // control: unbounded
        ],
    ) {
        let schema = schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let secret = parse("S(x0, x1) :- R(x0, x1)", &schema, &mut domain);
        let views: Vec<ConjunctiveQuery> =
            texts.iter().map(|t| parse(t, &schema, &mut domain)).collect();

        let bounded = engine(&schema, &domain, budget);
        let unbounded = engine(&schema, &domain, None);
        // Audit every prefix twice (the second round replays over whatever
        // the budget left resident) and compare against the unbounded
        // engine request-for-request.
        for round in 0..2 {
            for k in 0..views.len() {
                let request = AuditRequest::new(
                    secret.clone(),
                    ViewSet::from_views(views[..=k].to_vec()),
                ).named(format!("r{round}k{k}"));
                let a = bounded.audit(&request).unwrap();
                let b = unbounded.audit(&request).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&a).unwrap(),
                    serde_json::to_string(&b).unwrap(),
                    "budget {:?}, round {}, prefix {}: verdicts diverged", budget, round, k
                );
            }
        }
        // Sanity on the accounting: tiny budgets must actually evict, and
        // evictions must be visible through cache_stats.
        let stats = bounded.cache_stats();
        if budget == Some(1) {
            prop_assert!(stats.evictions > 0, "1-byte budget never evicted: {:?}", stats);
        }
        if budget.is_none() {
            prop_assert_eq!(stats.evictions, 0);
        }
    }

    #[test]
    fn budgeted_sessions_match_unbounded_sessions_step_for_step(
        texts in proptest::collection::vec(view_text(), 1..4),
        budget in 1usize..4096,
    ) {
        let schema = schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let secret = parse("S(x0, x1) :- R(x0, x1)", &schema, &mut domain);
        let views: Vec<ConjunctiveQuery> =
            texts.iter().map(|t| parse(t, &schema, &mut domain)).collect();

        let bounded = Arc::new(engine(&schema, &domain, Some(budget)));
        let unbounded = Arc::new(engine(&schema, &domain, None));
        let mut bounded_session = bounded.open_session(secret.clone()).named("s");
        let mut unbounded_session = unbounded.open_session(secret).named("s");
        for view in &views {
            let a = bounded_session.publish(view.clone()).unwrap();
            let b = unbounded_session.publish(view.clone()).unwrap();
            prop_assert_eq!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap(),
                "budget {}: session verdict diverged at step {}", budget, a.step
            );
            prop_assert_eq!(
                serde_json::to_string(&a.marginal).unwrap(),
                serde_json::to_string(&b.marginal).unwrap()
            );
        }
    }
}

/// The ISSUE's snapshot/restore × eviction regression: snapshot, force
/// eviction with a tiny byte budget, restore, and assert the replayed
/// reports are byte-identical to an unbounded engine's.
#[test]
fn restored_sessions_rederive_evicted_artifacts_transparently() {
    let schema = schema();
    let mut domain = Domain::with_constants(["a", "b"]);
    let secret = parse("S(x0, x1) :- R(x0, x1)", &schema, &mut domain);
    let v1 = parse("V1(x0) :- R(x0, x1)", &schema, &mut domain);
    let v2 = parse("V2(x1) :- R(x0, x1)", &schema, &mut domain);
    let churn: Vec<ConjunctiveQuery> = [
        "W1(x0) :- R(x0, 'a')",
        "W2(x0) :- R(x0, 'b')",
        "W3() :- R(x0, x0)",
        "W4(x0) :- R('a', x0)",
    ]
    .iter()
    .map(|t| parse(t, &schema, &mut domain))
    .collect();

    // A budget small enough that the churn audits evict v1/v2's artifacts.
    let bounded = Arc::new(engine(&schema, &domain, Some(256)));
    let unbounded = Arc::new(engine(&schema, &domain, None));
    let mut session = bounded.open_session(secret.clone()).named("evict");
    let mut baseline = unbounded.open_session(secret).named("evict");

    let first = session.publish(v1.clone()).unwrap();
    baseline.publish(v1).unwrap();
    let snap = session.snapshot();
    let base_snap = baseline.snapshot();

    // Churn the caches: each audit inserts fresh artifacts, evicting the
    // snapshot's under the tiny budget.
    let evictions_before = bounded.cache_stats().evictions;
    for view in &churn {
        session.audit_candidate(view).unwrap();
    }
    assert!(
        bounded.cache_stats().evictions > evictions_before,
        "churn must evict under a 256-byte budget: {:?}",
        bounded.cache_stats()
    );

    // Restore and replay: the rewound session re-derives whatever was
    // evicted; reports match the unbounded baseline byte-for-byte.
    session.restore(&snap);
    baseline.restore(&base_snap);
    assert_eq!(session.views_published(), 1);
    let replayed = session.publish(v2.clone()).unwrap();
    let expected = baseline.publish(v2).unwrap();
    assert_eq!(
        serde_json::to_string(&replayed.report).unwrap(),
        serde_json::to_string(&expected.report).unwrap(),
        "restored session diverged after eviction"
    );
    assert_eq!(
        serde_json::to_string(&replayed.marginal).unwrap(),
        serde_json::to_string(&expected.marginal).unwrap()
    );
    // And the step-1 verdict is still reproducible from scratch.
    let re_audit = bounded
        .audit(&AuditRequest::new(
            session.secret().clone(),
            ViewSet::from_views(vec![session.published()[0].query.clone()]),
        ))
        .unwrap();
    assert_eq!(re_audit.secure, first.report.secure);
}
