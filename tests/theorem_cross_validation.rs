//! Integration test: the paper's worked examples and the agreement of all
//! three decision paths (critical tuples, event polynomials, exhaustive
//! statistics) on randomized inputs.

use proptest::prelude::*;
use qvsec::security::{secure_boolean_via_polynomials, secure_for_all_distributions};
use qvsec_cq::eval::AnswerSet;
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use qvsec_prob::lineage::support_space;
use qvsec_prob::poly::{event_polynomial, Polynomial};
use qvsec_prob::probability::{answer_distribution, conditional_probability};
use qvsec_workload::paper::{example_4_12, example_4_2, example_4_3};
use qvsec_workload::schemas::binary_schema;

#[test]
fn example_4_2_numbers_are_exact() {
    // P[S = {(a)}] = 3/16 and P[S = {(a)} | V = {(b)}] = 1/3.
    let (s, v, domain) = example_4_2();
    let schema = binary_schema();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dict = Dictionary::half(space);
    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();
    let s_target: AnswerSet = [vec![a]].into_iter().collect();
    let v_target: AnswerSet = [vec![b]].into_iter().collect();

    let dist = answer_distribution(&s, &dict).unwrap();
    assert_eq!(dist.get(&s_target).copied(), Some(Ratio::new(3, 16)));

    let posterior = conditional_probability(
        &dict,
        |i| qvsec_cq::evaluate(&s, i) == s_target,
        |i| qvsec_cq::evaluate(&v, i) == v_target,
    )
    .unwrap()
    .unwrap();
    assert_eq!(posterior, Ratio::new(1, 3));

    // and therefore the pair is not secure, by any of the three criteria
    assert!(
        !secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    assert!(
        !check_independence(&s, &ViewSet::single(v), &dict)
            .unwrap()
            .independent
    );
}

#[test]
fn example_4_3_numbers_are_exact() {
    // P[S = {(a)}] = 1/4 with and without V = {(b)}; the pair is secure.
    let (s, v, domain) = example_4_3();
    let schema = binary_schema();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dict = Dictionary::half(space);
    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();
    let s_target: AnswerSet = [vec![a]].into_iter().collect();
    let v_target: AnswerSet = [vec![b]].into_iter().collect();

    let dist = answer_distribution(&s, &dict).unwrap();
    assert_eq!(dist.get(&s_target).copied(), Some(Ratio::new(1, 4)));
    let posterior = conditional_probability(
        &dict,
        |i| qvsec_cq::evaluate(&s, i) == s_target,
        |i| qvsec_cq::evaluate(&v, i) == v_target,
    )
    .unwrap()
    .unwrap();
    assert_eq!(posterior, Ratio::new(1, 4));

    assert!(
        secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    assert!(
        check_independence(&s, &ViewSet::single(v), &dict)
            .unwrap()
            .independent
    );
}

#[test]
fn example_4_12_polynomial_is_reproduced() {
    // f_Q = x1 + x2·x4 − x1·x2·x4 in the paper's 1-based tuple indexing,
    // i.e. x0 + x1·x3 − x0·x1·x3 over the canonical tuple order.
    let (q, domain) = example_4_12();
    let schema = binary_schema();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let f = event_polynomial(&q, &space).unwrap();
    let x = Polynomial::var;
    let expected = &(&x(0) + &(&x(1) * &x(3))) - &(&(&x(0) * &x(1)) * &x(3));
    assert_eq!(f, expected);
    // criticality of exactly t1, t2, t4 (paper indexing)
    assert_eq!(f.degree_of_var(0), 1);
    assert_eq!(f.degree_of_var(1), 1);
    assert_eq!(f.degree_of_var(2), 0);
    assert_eq!(f.degree_of_var(3), 1);
}

fn random_boolean_query() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        Just("x0".to_string()),
        Just("x1".to_string()),
        Just("'a'".to_string()),
        Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    proptest::collection::vec(atom, 1..3).prop_map(|atoms| format!("Q() :- {}", atoms.join(", ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_three_decision_paths_agree(s_text in random_boolean_query(), v_text in random_boolean_query()) {
        let schema: Schema = binary_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query(&s_text, &schema, &mut domain).unwrap();
        let v = parse_query(&v_text, &schema, &mut domain).unwrap();
        let views = ViewSet::single(v.clone());

        // 1. Theorem 4.5 criterion
        let by_criterion = secure_for_all_distributions(&s, &views, &schema, &domain)
            .unwrap()
            .secure;
        // 2. event-polynomial identity (Eq. 6)
        let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        let by_polynomials = secure_boolean_via_polynomials(&s, &v, &space).unwrap();
        // 3. literal Definition 4.1 under the uniform dictionary
        let full_space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(full_space);
        let by_statistics = check_independence(&s, &views, &dict).unwrap().independent;

        prop_assert_eq!(by_criterion, by_polynomials, "criterion vs polynomials on ({}, {})", s_text, v_text);
        prop_assert_eq!(by_criterion, by_statistics, "criterion vs statistics on ({}, {})", s_text, v_text);
    }
}
