//! Integration test: the five Section 5.2 applications, exercised through the
//! public API across crates.

use qvsec::prior::{
    cardinality_destroys_security, protective_knowledge_absent, secure_given_knowledge,
    secure_given_knowledge_all_distributions_boolean, secure_given_prior_view_boolean,
    secure_given_prior_views_dict, secure_under_keys, CardinalityConstraint, Knowledge,
};
use qvsec::security::secure_for_all_distributions;
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_prob::lineage::support_space;

fn keyed_schema() -> Schema {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", &["key", "value"]);
    schema.add_key(r, &[0]).unwrap();
    schema
}

#[test]
fn application_1_no_knowledge_recovers_theorem_4_5() {
    let schema = keyed_schema();
    let mut domain = Domain::with_constants(["a", "b", "c"]);
    let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();
    let space = support_space(&[&s, &v], &domain, 100).unwrap();
    let plain = secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
        .unwrap()
        .secure;
    let with_trivial_knowledge =
        secure_given_knowledge_all_distributions_boolean(&s, &v, &Knowledge::True, &space).unwrap();
    assert_eq!(plain, with_trivial_knowledge);
    assert!(plain, "the pair is secure without knowledge");
}

#[test]
fn application_2_keys() {
    let schema = keyed_schema();
    let mut domain = Domain::with_constants(["a", "b", "c"]);
    let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();
    let space = support_space(&[&s, &v], &domain, 100).unwrap();
    // Corollary 5.3 verdict
    let verdict = secure_under_keys(&s, &ViewSet::single(v.clone()), &schema, &space).unwrap();
    assert!(!verdict.secure);
    assert_eq!(verdict.violating_pairs.len(), 1);
    // exhaustive Definition 5.1 check agrees
    let dict = Dictionary::half(space);
    let keys = Knowledge::Keys(schema.keys().to_vec());
    let report = secure_given_knowledge(&s, &ViewSet::single(v), &keys, &dict).unwrap();
    assert!(!report.independent);
    // the disclosure is total in one direction: once V is known true, S is false
    let worst = report.worst_violation().unwrap();
    assert!(worst.posterior.is_zero() || worst.posterior.is_one());
}

#[test]
fn application_3_cardinality() {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
    assert!(
        secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    let space = TupleSpace::full(&schema, &domain).unwrap();
    for constraint in [
        CardinalityConstraint::Exactly(1),
        CardinalityConstraint::AtMost(2),
        CardinalityConstraint::AtLeast(3),
    ] {
        let k = Knowledge::Cardinality(constraint);
        assert!(
            !secure_given_knowledge_all_distributions_boolean(&s, &v, &k, &space).unwrap(),
            "{constraint:?} must destroy security"
        );
    }
    assert!(cardinality_destroys_security(&s, &ViewSet::single(v)));
}

#[test]
fn application_4_protective_disclosure() {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
    let views = ViewSet::single(v.clone());
    assert!(
        !secure_for_all_distributions(&s, &views, &schema, &domain)
            .unwrap()
            .secure
    );
    let k = protective_knowledge_absent(&s, &views, &domain).unwrap();
    let space = support_space(&[&s, &v], &domain, 100).unwrap();
    assert!(secure_given_knowledge_all_distributions_boolean(&s, &v, &k, &space).unwrap());
}

#[test]
fn application_5_prior_views() {
    let mut schema = Schema::new();
    schema.add_relation("R1", &["x", "y"]);
    schema.add_relation("R2", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let u = parse_query("U() :- R1('a', x), R2('a', y)", &schema, &mut domain).unwrap();
    let s = parse_query("S() :- R1(z1, z2), R2('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R1('a', 'b'), R2(w1, w2)", &schema, &mut domain).unwrap();
    // insecure individually, secure relative to the already-published U
    assert!(
        !secure_for_all_distributions(&s, &ViewSet::single(u.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    assert!(
        !secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure
    );
    let space = support_space(&[&u, &s, &v], &domain, 1 << 10).unwrap();
    assert!(secure_given_prior_view_boolean(&u, &s, &v, &space).unwrap());

    // dictionary-based relative security for non-boolean prior views
    let mut rschema = Schema::new();
    rschema.add_relation("R", &["x", "y"]);
    let mut rdomain = Domain::with_constants(["a", "b"]);
    let prior = parse_query("U(x) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let new_view = parse_query("V(x) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let secret = parse_query("S(y) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let dict = Dictionary::half(TupleSpace::full(&rschema, &rdomain).unwrap());
    assert!(secure_given_prior_views_dict(
        &ViewSet::single(prior),
        &secret,
        &ViewSet::single(new_view),
        &dict
    )
    .unwrap());
}

#[test]
fn protective_knowledge_also_restores_statistical_independence() {
    // Cross-crate sanity: the Corollary 5.4 knowledge constructed in
    // `qvsec::prior` makes the literal Definition 5.1 check of `qvsec-prob`
    // pass over a non-uniform dictionary.
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
    let views = ViewSet::single(v);
    let k = protective_knowledge_absent(&s, &views, &domain).unwrap();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dict = Dictionary::uniform(space, qvsec_data::Ratio::new(1, 3)).unwrap();
    let report = secure_given_knowledge(&s, &views, &k, &dict).unwrap();
    assert!(report.independent);
}
