//! Integration test: reproduce Table 1 end to end.
//!
//! For every row of the paper's Table 1 the test checks (a) the security
//! column via Theorem 4.5, (b) the fast Section 4.2 check, (c) the literal
//! Definition 4.1 statistical test over a small dictionary, and (d) that the
//! measured leakage induces the same ordering of the rows as the paper's
//! informal Total / Partial / Minute / None spectrum.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::fast_check::fast_check;
use qvsec::report::DisclosureClass;
use qvsec_cq::ConjunctiveQuery;
use qvsec_data::{Dictionary, Ratio};
use qvsec_prob::lineage::support_space;
use qvsec_workload::paper::table1;
use qvsec_workload::schemas::employee_schema;

fn row_analysis(row: &qvsec_workload::paper::Table1Row) -> qvsec::AuditReport {
    let schema = employee_schema();
    let mut domain = row.domain.clone();
    domain.pad_to(2);
    let mut queries: Vec<&ConjunctiveQuery> = vec![&row.secret];
    queries.extend(row.views.iter());
    let space = support_space(&queries, &domain, 1 << 12).expect("small support space");
    let dict = Dictionary::uniform(space, Ratio::new(1, 2)).expect("uniform dictionary");
    AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .minute_threshold(Ratio::new(1, 10))
        .default_depth(AuditDepth::Probabilistic)
        .build()
        .audit(&AuditRequest::new(row.secret.clone(), row.views.clone()))
        .expect("analysis succeeds")
}

#[test]
fn security_column_matches_the_paper() {
    for row in table1() {
        let analysis = row_analysis(&row);
        assert_eq!(
            analysis.secure,
            Some(row.secure),
            "row {} security verdict differs from the paper",
            row.id
        );
        // the practical algorithm classifies all four rows correctly (§4.2)
        assert_eq!(
            fast_check(&row.secret, &row.views).is_certainly_secure(),
            row.secure,
            "row {} fast-check verdict differs",
            row.id
        );
        // Definition 4.1 agrees with Theorem 4.5 on every row
        assert_eq!(
            analysis.independence.as_ref().unwrap().independent,
            row.secure,
            "row {} statistical verdict differs",
            row.id
        );
    }
}

#[test]
fn disclosure_spectrum_is_reproduced() {
    let rows = table1();
    let analyses: Vec<_> = rows.iter().map(row_analysis).collect();

    // Row 1 is a total disclosure (the view determines the secret answer).
    assert_eq!(
        analyses[0].totally_disclosed,
        Some(true),
        "row 1 must be total"
    );
    assert_eq!(analyses[0].class, DisclosureClass::Total);

    // Rows 2 and 3 are partial/minute: insecure but not determined.
    for idx in [1, 2] {
        assert_eq!(analyses[idx].totally_disclosed, Some(false));
        assert_eq!(analyses[idx].secure, Some(false));
    }
    assert_eq!(
        analyses[1].class,
        DisclosureClass::Partial,
        "row 2 is a partial disclosure"
    );
    assert_eq!(
        analyses[2].class,
        DisclosureClass::Minute,
        "row 3 is a minute disclosure"
    );

    // Row 4 is perfectly secure.
    assert_eq!(analyses[3].class, DisclosureClass::NoDisclosure);
    assert!(analyses[3].leakage.as_ref().unwrap().max_leak.is_zero());

    // The leakage ordering reproduces the spectrum: the collusion of row 2
    // leaks strictly more than the size-only disclosure of row 3, which still
    // leaks a little, and row 4 leaks nothing.
    let leak = |i: usize| analyses[i].leakage.as_ref().unwrap().max_leak;
    assert!(
        leak(1) > leak(2),
        "row 2 (partial) must leak more than row 3 (minute): {} vs {}",
        leak(1),
        leak(2)
    );
    assert!(
        leak(2) > Ratio::ZERO,
        "row 3 still leaks something (database size)"
    );
    assert!(leak(3).is_zero());
}

#[test]
fn table_rows_report_witnessing_critical_tuples_when_insecure() {
    for row in table1() {
        let analysis = row_analysis(&row);
        let security = analysis
            .security
            .expect("probabilistic depth includes the exact verdict");
        if row.secure {
            assert!(security.common_critical_tuples.is_empty());
            assert!(analysis.witnesses.is_empty());
        } else {
            assert!(
                !security.common_critical_tuples.is_empty(),
                "row {} must produce witnesses",
                row.id
            );
            assert_eq!(
                analysis.witnesses.len(),
                security.common_critical_tuples.len()
            );
        }
    }
}
