//! Cross-crate integration tests for the `qvsec` workspace.
//!
//! The test targets live in the package root (see `Cargo.toml`): Table 1
//! classification, theorem cross-validation, prior-knowledge scenarios,
//! leakage ordering, the Appendix A hardness reduction and end-to-end
//! data-exchange scenarios.
