//! Integration test: the Section 6.1 leakage measure on the paper's
//! Employee examples (Examples 6.2 and 6.3) and the Theorem 6.1 bound.

use qvsec::leakage::{epsilon_for, leakage_exact, theorem_6_1_bound};
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};

fn emp_setup() -> (Schema, Domain, Dictionary) {
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["name", "department", "phone"]);
    let domain = Domain::with_constants(["a", "b"]);
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dict = Dictionary::half(space);
    (schema, domain, dict)
}

#[test]
fn example_6_2_department_view_leaks_only_a_little() {
    // V(d) :- Emp(n,d,p) about S(n,p) :- Emp(n,d,p): a strictly positive but
    // small leakage, with ε < 1 so Theorem 6.1 gives a finite bound.
    let (schema, mut domain, dict) = emp_setup();
    let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v = parse_query("V(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let views = ViewSet::single(v);
    let report = leakage_exact(&s, &views, &dict).unwrap();
    assert!(
        report.max_leak > Ratio::ZERO,
        "the pair is not perfectly secure"
    );

    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();
    let eps = epsilon_for(&s, &views, &dict, &domain, &[a, b], &[vec![a]])
        .unwrap()
        .unwrap();
    assert!(eps > Ratio::ZERO && eps < Ratio::ONE);
    let bound = theorem_6_1_bound(eps).unwrap();
    assert!(bound > Ratio::ZERO);
}

#[test]
fn example_6_3_more_revealing_views_and_collusion_increase_leakage() {
    let (schema, mut domain, dict) = emp_setup();
    let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_d = parse_query("Vd(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_nd = parse_query("Vnd(n, d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_dp = parse_query("Vdp(d, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();

    let leak_d = leakage_exact(&s, &ViewSet::single(v_d), &dict)
        .unwrap()
        .max_leak;
    let leak_nd = leakage_exact(&s, &ViewSet::single(v_nd.clone()), &dict)
        .unwrap()
        .max_leak;
    let leak_collusion = leakage_exact(
        &s,
        &ViewSet::from_views(vec![v_nd.clone(), v_dp.clone()]),
        &dict,
    )
    .unwrap()
    .max_leak;

    // Example 6.3's qualitative claims: the (name, department) view leaks at
    // least as much as the department-only view, and colluding with the
    // (department, phone) view leaks the most.
    assert!(
        leak_nd >= leak_d,
        "V(n,d) must leak at least as much as V(d): {leak_nd} vs {leak_d}"
    );
    assert!(
        leak_collusion >= leak_nd,
        "the collusion must leak at least as much as V(n,d): {leak_collusion} vs {leak_nd}"
    );
    assert!(leak_collusion > Ratio::ZERO);

    // the ε of Theorem 6.1 moves in the same direction
    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();
    let eps_d = epsilon_for(
        &s,
        &ViewSet::single(parse_query("V(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap()),
        &dict,
        &domain,
        &[a, b],
        &[vec![a]],
    )
    .unwrap()
    .unwrap();
    let eps_nd = epsilon_for(
        &s,
        &ViewSet::single(v_nd),
        &dict,
        &domain,
        &[a, b],
        &[vec![a, a]],
    )
    .unwrap()
    .unwrap();
    assert!(eps_nd >= eps_d);
}

#[test]
fn secure_pairs_have_zero_leakage_and_vice_versa() {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
    // a secure pair (Example 4.3)
    let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
    let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
    assert!(leakage_exact(&s, &ViewSet::single(v), &dict)
        .unwrap()
        .max_leak
        .is_zero());
    // an insecure pair (Example 4.2)
    let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let report = leakage_exact(&s, &ViewSet::single(v), &dict).unwrap();
    assert!(report.max_leak > Ratio::ZERO);
    let witness = report.witness.unwrap();
    assert!(witness.posterior > witness.prior);
}

#[test]
fn larger_departments_leak_less_about_the_association() {
    // The introduction's intuition: the more employees per department, the
    // harder it is to pin a phone number on a person. Compare the leakage of
    // the department view about the name-phone association over domains with
    // one extra phone value.
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["name", "department", "phone"]);
    let leak_for = |constants: &[&str]| {
        let mut domain = Domain::with_constants(constants.to_vec());
        let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
        let v = parse_query("V(n, d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
        // keep the space enumerable: one department value, growing phone pool
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        if space.len() > qvsec_data::bitset::MAX_ENUMERABLE {
            return None;
        }
        let dict = Dictionary::uniform(space, Ratio::new(1, 2)).unwrap();
        Some(
            leakage_exact(&s, &ViewSet::single(v), &dict)
                .unwrap()
                .max_leak,
        )
    };
    let small = leak_for(&["a", "b"]).expect("2-constant space is enumerable");
    assert!(small > Ratio::ZERO);
}
