//! Batch auditing: the whole Table 1 workload through one engine, in
//! parallel.
//!
//! ```text
//! cargo run -p qvsec-examples --example batch_audit
//! ```
//!
//! A single owned [`AuditEngine`] audits every (secret, view-set) pair of
//! the paper's Table 1 concurrently via [`AuditEngine::audit_batch`]. The
//! example then repeats the batch sequentially and verifies the verdicts
//! are identical — the engine's parallelism and its `crit(Q)` memo cache
//! are invisible to results. Finally it prints the reports as JSON, the
//! machine-readable form a service or the `qvsec-cli` binary would emit.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec_data::Domain;
use qvsec_workload::paper::table1;
use qvsec_workload::schemas::employee_schema;

fn main() {
    let schema = employee_schema();
    // One shared domain for the whole workload: re-parse every row's
    // queries against it so values are interned consistently.
    let mut domain = Domain::new();
    let requests: Vec<AuditRequest> = table1()
        .into_iter()
        .map(|row| {
            let secret = qvsec_cq::parse_query(
                &row.secret.display(&schema, &row.domain).to_string(),
                &schema,
                &mut domain,
            )
            .expect("row secret re-parses");
            let mut views = qvsec_cq::ViewSet::new();
            for v in row.views.iter() {
                views.push(
                    qvsec_cq::parse_query(
                        &v.display(&schema, &row.domain).to_string(),
                        &schema,
                        &mut domain,
                    )
                    .expect("row view re-parses"),
                );
            }
            AuditRequest::new(secret, views)
                .named(format!("table1-row{}", row.id))
                .with_depth(AuditDepth::Exact)
        })
        .collect();

    let engine = AuditEngine::builder(schema, domain).build();

    println!("=== Parallel batch over the Table 1 workload ===\n");
    let batch = engine
        .try_audit_batch(&requests)
        .expect("batch audit succeeds");
    for report in &batch {
        println!(
            "  {:<16} secure={:<5} class={:<8} witnesses={}",
            report.name,
            format!("{:?}", report.secure == Some(true)),
            report.class.to_string(),
            report.witnesses.len()
        );
    }
    println!(
        "\n  crit(Q) sets memoized after the batch: {}",
        engine.cached_crit_sets()
    );

    // The same workload sequentially: verdicts must match exactly.
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| engine.audit(r).expect("sequential audit succeeds"))
        .collect();
    let agree = batch.iter().zip(&sequential).all(|(b, s)| {
        b.secure == s.secure
            && b.class == s.class
            && b.security.as_ref().map(|x| &x.common_critical_tuples)
                == s.security.as_ref().map(|x| &x.common_critical_tuples)
    });
    println!("  parallel == sequential verdicts: {agree}");
    assert!(agree, "batch and sequential audits must agree");

    println!("\n=== Machine-readable reports (what qvsec-cli emits) ===\n");
    let json = serde_json::to_string_pretty(&batch).expect("reports serialize");
    println!("{json}");
}
