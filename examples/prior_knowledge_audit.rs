//! Security in the presence of prior knowledge (Section 5).
//!
//! ```text
//! cargo run -p qvsec-examples --example prior_knowledge_audit
//! ```
//!
//! Walks through the five applications of Section 5.2 on executable
//! instances: no knowledge, key constraints, cardinality constraints,
//! protective disclosure of critical tuples, and relative security with
//! respect to a previously published view.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::prior::{
    cardinality_destroys_security, protective_knowledge_absent, secure_given_knowledge,
    secure_given_knowledge_all_distributions_boolean, secure_under_keys, CardinalityConstraint,
    Knowledge,
};
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_prob::lineage::support_space;

/// The baseline (no prior knowledge) verdict, served by an [`AuditEngine`]
/// at exact depth.
fn baseline(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    schema: &Schema,
    domain: &Domain,
) -> qvsec::security::SecurityVerdict {
    let engine = AuditEngine::builder(schema.clone(), domain.clone()).build();
    engine
        .audit(&AuditRequest::new(secret.clone(), views.clone()).with_depth(AuditDepth::Exact))
        .expect("audit succeeds")
        .security
        .expect("exact depth carries a security verdict")
}

fn main() {
    application_1_and_2();
    application_3();
    application_4();
    application_5();
}

fn application_1_and_2() {
    println!("=== Applications 1 & 2: key constraints can destroy security ===\n");
    let mut schema = Schema::new();
    let r = schema.add_relation("R", &["key", "value"]);
    schema.add_key(r, &[0]).unwrap();
    let mut domain = Domain::with_constants(["a", "b", "c"]);
    let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();

    let plain = baseline(&s, &ViewSet::single(v.clone()), &schema, &domain);
    println!("  without prior knowledge : {}", plain.summary());

    let space = support_space(&[&s, &v], &domain, 1 << 10).unwrap();
    let keys = Knowledge::Keys(schema.keys().to_vec());
    let with_keys =
        secure_given_knowledge_all_distributions_boolean(&s, &v, &keys, &space).unwrap();
    println!(
        "  knowing `key` is a key  : {}",
        if with_keys {
            "still secure"
        } else {
            "NOT secure (V true implies S false)"
        }
    );
    let corollary = secure_under_keys(&s, &ViewSet::single(v), &schema, &space).unwrap();
    println!(
        "  Corollary 5.3 verdict   : secure = {}, violating ≡_K pairs = {}\n",
        corollary.secure,
        corollary.violating_pairs.len()
    );
}

fn application_3() {
    println!("=== Application 3: cardinality knowledge destroys all security ===\n");
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
    println!(
        "  the pair is otherwise secure: {}",
        baseline(&s, &ViewSet::single(v.clone()), &schema, &domain).secure
    );
    let space = TupleSpace::full(&schema, &domain).unwrap();
    for constraint in [
        CardinalityConstraint::AtMost(1),
        CardinalityConstraint::Exactly(2),
        CardinalityConstraint::AtLeast(3),
    ] {
        let k = Knowledge::Cardinality(constraint);
        let secure = secure_given_knowledge_all_distributions_boolean(&s, &v, &k, &space).unwrap();
        println!("  knowing {constraint:?}: secure = {secure}");
    }
    println!(
        "  (the paper's blanket statement applies: {})\n",
        cardinality_destroys_security(&s, &ViewSet::single(v))
    );
}

fn application_4() {
    println!("=== Application 4: protecting a secret by disclosing critical tuples ===\n");
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
    let views = ViewSet::single(v.clone());
    println!(
        "  before: {}",
        baseline(&s, &views, &schema, &domain).summary()
    );
    let k = protective_knowledge_absent(&s, &views, &domain).unwrap();
    println!("  announced knowledge: {k:?}");
    let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
    let report = secure_given_knowledge(&s, &views, &k, &dict).unwrap();
    println!(
        "  after announcing it, Definition 5.1 independence holds: {}\n",
        report.independent
    );
}

fn application_5() {
    println!("=== Application 5: relative security w.r.t. a prior view ===\n");
    let mut schema = Schema::new();
    schema.add_relation("R1", &["x", "y"]);
    schema.add_relation("R2", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let u = parse_query("U() :- R1('a', x), R2('a', y)", &schema, &mut domain).unwrap();
    let s = parse_query("S() :- R1(z1, z2), R2('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R1('a', 'b'), R2(w1, w2)", &schema, &mut domain).unwrap();
    for (label, query, other) in [("U", &u, &s), ("V", &v, &s)] {
        let verdict = baseline(other, &ViewSet::single(query.clone()), &schema, &domain);
        println!("  S secure w.r.t. {label} alone: {}", verdict.secure);
    }
    let space = support_space(&[&u, &s, &v], &domain, 1 << 10).unwrap();
    let relative = qvsec::prior::secure_given_prior_view_boolean(&u, &s, &v, &space).unwrap();
    println!("  but given that U was already published, V adds nothing: U : S | V = {relative}");
}
