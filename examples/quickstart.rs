//! Quickstart: audit the four query/view pairs of Table 1 with the
//! [`AuditEngine`].
//!
//! ```text
//! cargo run -p qvsec-examples --example quickstart
//! ```
//!
//! For every row of Table 1 the engine escalates through its staged
//! pipeline — the fast syntactic check, the exact Theorem 4.5 criterion,
//! the literal Definition 4.1 statistical test over a small dictionary and
//! the Section 6.1 leakage measure — and prints the resulting
//! classification next to the verdict the paper assigns.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec_data::{Dictionary, Ratio};
use qvsec_prob::lineage::support_space;
use qvsec_workload::paper::table1;
use qvsec_workload::schemas::employee_schema;

fn main() {
    let schema = employee_schema();
    println!(
        "Table 1 — a spectrum of information disclosure over Employee(name, department, phone)\n"
    );
    println!(
        "{:<4} {:<30} {:<16} {:<16} {:<10}",
        "row", "pair", "paper", "qvsec", "leak(S,V)"
    );
    for row in table1() {
        // Build a small dictionary over the support of the row's queries,
        // using a 2-constant active domain so the exact checks stay fast.
        let mut domain = row.domain.clone();
        domain.pad_to(2);
        let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let space = support_space(&queries, &domain, 1 << 12).expect("small support");
        let dict = Dictionary::uniform(space, Ratio::new(1, 2)).expect("uniform dictionary");

        // Over the tiny 2-constant audit dictionary absolute leak values are
        // compressed, so use a 1/10 minute-vs-partial threshold (the ordering
        // of the rows, which is what the paper's spectrum describes, does not
        // depend on the threshold).
        let engine = AuditEngine::builder(schema.clone(), domain)
            .dictionary(dict)
            .minute_threshold(Ratio::new(1, 10))
            .default_depth(AuditDepth::Probabilistic)
            .build();
        let report = engine
            .audit(&AuditRequest::new(row.secret.clone(), row.views.clone()))
            .expect("audit succeeds");

        let pair = format!(
            "S{} vs {}",
            row.id,
            row.views
                .iter()
                .map(|v| v.name.clone())
                .collect::<Vec<_>>()
                .join(" + ")
        );
        println!(
            "{:<4} {:<30} {:<16} {:<16} {:<10.4}",
            row.id,
            pair,
            format!(
                "{} / {}",
                row.disclosure,
                if row.secure { "Yes" } else { "No" }
            ),
            format!(
                "{} / {}",
                report.class,
                if report.secure == Some(true) {
                    "Yes"
                } else {
                    "No"
                }
            ),
            report
                .leakage
                .as_ref()
                .map(|l| l.max_leak_f64())
                .unwrap_or(f64::NAN)
        );
    }

    println!("\nDetailed report for row 2 (the Bob/Carol collusion):\n");
    let rows = table1();
    let row2 = &rows[1];
    let mut domain = row2.domain.clone();
    domain.pad_to(2);
    let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row2.secret];
    queries.extend(row2.views.iter());
    let space = support_space(&queries, &domain, 1 << 12).unwrap();
    let dict = Dictionary::uniform(space, Ratio::new(1, 2)).unwrap();
    let engine = AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .default_depth(AuditDepth::Probabilistic)
        .build();
    let report = engine
        .audit(&AuditRequest::new(row2.secret.clone(), row2.views.clone()).named("bob+carol"))
        .unwrap();
    println!("{}", report.render());
}
