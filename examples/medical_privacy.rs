//! Hospital-style privacy audit over `Patient(name, disease)`.
//!
//! ```text
//! cargo run -p qvsec-examples --example medical_privacy
//! ```
//!
//! The hospital wants to publish (a) the list of patient names (admissions
//! roster) and (b) the list of diseases treated (public-health reporting),
//! while keeping the name–disease association secret (the Section 2.1 /
//! Sweeney-style threat). The example:
//!
//! * checks perfect query-view security for each view and for the collusion,
//! * reproduces the Section 2.1 effect: a boolean view can sharply raise the
//!   probability of a specific secret fact without determining it,
//! * measures the leakage (Section 6.1) and the Theorem 6.1 bound, and
//! * shows how the Section 6.2 expected-size model classifies the same
//!   disclosures as "practically secure" when the domain grows.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::leakage::{epsilon_for, theorem_6_1_bound};
use qvsec::practical::{asymptotics, practical_security, PracticalVerdict};
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Tuple, TupleSpace};
use qvsec_workload::schemas::patient_schema;

fn main() {
    let schema = patient_schema();
    let mut domain = Domain::with_constants(["ann", "bo", "flu", "asthma"]);

    let names_view = parse_query("Names(n) :- Patient(n, d)", &schema, &mut domain).unwrap();
    let disease_view = parse_query("Diseases(d) :- Patient(n, d)", &schema, &mut domain).unwrap();
    let secret = parse_query("S(n, d) :- Patient(n, d)", &schema, &mut domain).unwrap();

    // One engine serves the whole audit: it owns the schema, the domain and
    // the 2x2 dictionary, and escalates per request. The dictionary's tuple
    // space is *typed* — names {ann, bo} x diseases {flu, asthma}, the
    // Section 2.1 shape — rather than the full 4x4 cross of the untyped
    // domain, which keeps the exhaustive Definition 4.1 check tractable.
    let patient = schema.relation_by_name("Patient").unwrap();
    let names = ["ann", "bo"].map(|n| domain.get(n).unwrap());
    let diseases = ["flu", "asthma"].map(|d| domain.get(d).unwrap());
    let space = TupleSpace::from_tuples(
        names
            .iter()
            .flat_map(|&n| {
                diseases
                    .iter()
                    .map(move |&d| Tuple::new(patient, vec![n, d]))
            })
            .collect(),
    );
    let dict = Dictionary::uniform(space.clone(), Ratio::new(1, 4)).unwrap();
    let engine = AuditEngine::builder(schema.clone(), domain.clone())
        .dictionary(dict)
        .build();

    println!("=== Perfect security (Theorem 4.5, exact depth) ===\n");
    for (label, views) in [
        ("names only", ViewSet::single(names_view.clone())),
        ("diseases only", ViewSet::single(disease_view.clone())),
        (
            "names + diseases (collusion)",
            ViewSet::from_views(vec![names_view.clone(), disease_view.clone()]),
        ),
    ] {
        let report = engine
            .audit(&AuditRequest::new(secret.clone(), views).with_depth(AuditDepth::Exact))
            .unwrap();
        println!(
            "  {:<30} -> {}",
            label,
            report.security.expect("exact depth").summary()
        );
    }

    println!("\n=== Escalating to the dictionary (Definition 4.1 + Section 6.1) ===\n");
    println!(
        "  tuple space: {} possible Patient tuples, {} instances",
        space.len(),
        1u64 << space.len()
    );
    let views = ViewSet::from_views(vec![names_view.clone(), disease_view.clone()]);
    let full = engine
        .audit(
            &AuditRequest::new(secret.clone(), views.clone())
                .named("names+diseases")
                .with_depth(AuditDepth::Probabilistic),
        )
        .unwrap();
    let report = full.independence.as_ref().expect("probabilistic depth");
    println!(
        "  statistically independent: {} ({} answer pairs checked)",
        report.independent, report.pairs_checked
    );
    if let Some(worst) = report.worst_violation() {
        println!(
            "  largest probability shift: prior {} -> posterior {}",
            worst.prior, worst.posterior
        );
    }
    let leak = full.leakage.as_ref().expect("probabilistic depth");
    println!(
        "  leak(S, {{Names, Diseases}}) = {} (~{:.4})",
        leak.max_leak,
        leak.max_leak_f64()
    );
    if let Some(w) = &leak.witness {
        println!(
            "  attained at secret answer {:?} given view answers {:?}",
            w.query_answer, w.view_answers
        );
    }
    let dict = engine.dictionary().expect("engine holds the dictionary");
    let ann = domain.get("ann").unwrap();
    let flu = domain.get("flu").unwrap();
    if let Some(eps) = epsilon_for(
        &secret,
        &views,
        dict,
        &domain,
        &[ann, flu],
        &[vec![ann], vec![flu]],
    )
    .unwrap()
    {
        println!(
            "  ε of Theorem 6.1 for (ann, flu): {} (~{:.4})",
            eps,
            eps.to_f64()
        );
        if let Some(bound) = theorem_6_1_bound(eps) {
            println!(
                "  Theorem 6.1 leakage bound: {} (~{:.4})",
                bound,
                bound.to_f64()
            );
        }
    }

    println!("\n=== Practical security as the domain grows (Section 6.2) ===\n");
    let mut d2 = Domain::new();
    let s_bool = parse_query("Sb() :- Patient('ann', 'flu')", &schema, &mut d2).unwrap();
    let v_bool = parse_query("Vb() :- Patient(n, 'flu')", &schema, &mut d2).unwrap();
    let a_s = asymptotics(&s_bool, &schema, 100.0).unwrap();
    let a_v = asymptotics(&v_bool, &schema, 100.0).unwrap();
    println!("  μ_n[Sb] decays like 1/n^{}", a_s.exponent);
    println!("  μ_n[Vb] decays like 1/n^{}", a_v.exponent);
    match practical_security(&s_bool, &v_bool, &schema, 100.0).unwrap() {
        PracticalVerdict::PracticallySecure => {
            println!("  publishing Vb is PRACTICALLY SECURE for Sb: lim μ_n[Sb | Vb] = 0")
        }
        PracticalVerdict::PracticalDisclosure { estimated_limit } => {
            println!("  practical disclosure: lim μ_n[Sb | Vb] ≈ {estimated_limit:.3}")
        }
    }
}
