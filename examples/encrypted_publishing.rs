//! Publishing an encrypted copy of the data (Section 5.4).
//!
//! ```text
//! cargo run -p qvsec-examples --example encrypted_publishing
//! ```
//!
//! A data owner publishes the `Employee` relation with every attribute value
//! encrypted by an ideal one-way function, as done by controlled-publishing
//! schemes and untrusted database services. The example shows what such an
//! "encrypted view" does and does not protect:
//!
//! * join structure and cardinality are fully visible (constant-free queries
//!   are answerable),
//! * consequently **no** query is perfectly secure with respect to the
//!   encrypted view,
//! * but constant-specific secrets ("does Jane work in Shipping?") are only
//!   minutely disclosed, which the leakage machinery quantifies.

use qvsec::encrypted::{
    answerable_from_encrypted, encrypt_instance, perfectly_secure_wrt_encrypted,
};
use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec_cq::{evaluate, parse_query};
use qvsec_data::{Domain, Instance, Tuple};
use qvsec_workload::schemas::employee_schema;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let schema = employee_schema();
    let mut domain = Domain::new();
    let employees = [
        ("jane", "shipping", "p1"),
        ("joe", "shipping", "p2"),
        ("mia", "billing", "p3"),
        ("ned", "billing", "p1"), // shares a phone extension with jane
    ];
    for (n, d, p) in employees {
        domain.add(n);
        domain.add(d);
        domain.add(p);
    }
    let database = Instance::from_tuples(
        employees
            .iter()
            .map(|(n, d, p)| Tuple::from_names(&schema, &domain, "Employee", &[n, d, p]).unwrap()),
    );

    println!("original database ({} tuples):", database.len());
    println!("  {}\n", database.display(&schema, &domain));

    let mut rng = StdRng::seed_from_u64(42);
    let (encrypted, enc_domain, _key) = encrypt_instance(&database, &schema, &domain, &mut rng);
    println!("published encrypted view:");
    println!("  {}\n", encrypted.display(&schema, &enc_domain));

    println!("=== What the encrypted view still reveals ===\n");
    println!(
        "  cardinality: {} tuples (always disclosed)",
        encrypted.len()
    );

    // A constant-free query: "are there two employees sharing a phone?"
    let mut d = enc_domain.clone();
    let shared_phone = parse_query(
        "Q1() :- Employee(n1, d1, p), Employee(n2, d2, p), n1 != n2",
        &schema,
        &mut d,
    )
    .unwrap();
    println!(
        "  Q1 (two employees share a phone), constant-free, answerable from the encrypted view: {}",
        answerable_from_encrypted(&shared_phone)
    );
    println!(
        "    evaluated on the encrypted view: {}",
        !evaluate(&shared_phone, &encrypted).is_empty()
    );

    // A constant-specific query is not answerable...
    let mut d = enc_domain.clone();
    let jane_shipping =
        parse_query("Q2() :- Employee('jane', 'shipping', p)", &schema, &mut d).unwrap();
    println!(
        "  Q2 (is Jane in Shipping?), mentions constants, answerable: {}",
        answerable_from_encrypted(&jane_shipping)
    );
    println!(
        "    evaluated on the encrypted view (tokens hide the constants): {}",
        !evaluate(&jane_shipping, &encrypted).is_empty()
    );

    println!("\n=== Perfect security w.r.t. the encrypted view ===\n");
    for (label, text) in [
        ("department sizes", "S1(d) :- Employee(n, d, p)"),
        ("Jane's phone", "S2(p) :- Employee('jane', d, p)"),
        ("whole relation", "S3(n, d, p) :- Employee(n, d, p)"),
    ] {
        let mut d = domain.clone();
        let q = parse_query(text, &schema, &mut d).unwrap();
        println!(
            "  {:<20} perfectly secure: {}   (cardinality is always leaked)",
            label,
            perfectly_secure_wrt_encrypted(&q)
        );
    }

    // For contrast: had Alice published the *plaintext* projection
    // V(n, d) instead of an encrypted copy, the audit engine condemns the
    // name-department secret outright.
    println!("\n=== Contrast: plaintext projection, audited by the engine ===\n");
    let mut d = domain.clone();
    let plain_view = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut d).unwrap();
    let plain_secret = parse_query("S(n, d) :- Employee(n, d, p)", &schema, &mut d).unwrap();
    let engine = AuditEngine::builder(schema.clone(), d).build();
    let report = engine
        .audit(
            &AuditRequest::new(plain_secret, qvsec_cq::ViewSet::single(plain_view))
                .named("plaintext-projection")
                .with_depth(AuditDepth::Exact),
        )
        .unwrap();
    println!("{}", report.render());

    println!(
        "Conclusion: encrypted views protect constants but not structure; pair them with the\n\
         leakage analysis (see the medical_privacy example) to quantify what remains."
    );
}
