//! Multi-party collusion audit of the introduction's data-exchange scenario.
//!
//! ```text
//! cargo run -p qvsec-examples --example collusion_audit
//! ```
//!
//! A manufacturing company publishes three message types (dynamic views) to
//! three partners — suppliers, retailers and a tax consultant — and an HR
//! department publishes the Bob/Carol projections of the Employee table.
//! The audit answers two questions the paper's introduction raises:
//!
//! 1. Does any single recipient learn something about the secret?
//! 2. Which *coalitions* of recipients (accidental or malicious forwarding,
//!    company mergers, ...) would jointly violate the secret?
//!
//! It also quantifies the intro's "four people per department ⇒ a phone
//! number can be guessed with 25% success" claim by Monte-Carlo simulation.

use qvsec_cq::parse_query;
use qvsec_data::{Domain, Instance, Tuple};
use qvsec_prob::montecarlo::MonteCarloEstimator;
use qvsec_workload::paper::{intro_collusion, manufacturing_views};
use qvsec_workload::scenarios::{
    collusion_audit, minimal_unsafe_coalitions, session_publication_audit,
};
use qvsec_workload::schemas::{employee_schema, manufacturing_schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn audit_manufacturing() {
    println!("=== Manufacturing exchange audit (intro scenario) ===\n");
    let schema = manufacturing_schema();
    let (secret, views, domain) = manufacturing_views();
    let named: Vec<(String, qvsec_cq::ConjunctiveQuery)> = views
        .iter()
        .cloned()
        .zip(["suppliers", "retailers", "tax-consultant"])
        .map(|(v, who)| (who.to_string(), v))
        .collect();
    let reports = collusion_audit(&secret, &named, &schema, &domain).expect("audit succeeds");
    println!("secret: internal manufacturing cost  S(pr, c) :- ManufCost(pr, c)\n");
    for report in &reports {
        println!(
            "  coalition {:<40} -> {}",
            format!("{:?}", report.members),
            if report.verdict.secure {
                "secure"
            } else {
                "NOT secure"
            }
        );
    }
    let minimal = minimal_unsafe_coalitions(&reports);
    if minimal.is_empty() {
        println!("\n  no coalition can learn anything about the manufacturing cost\n");
    } else {
        println!(
            "\n  minimal unsafe coalitions: {:?}\n",
            minimal.iter().map(|r| &r.members).collect::<Vec<_>>()
        );
    }
}

fn audit_employee() {
    println!("=== Employee projections (Bob and Carol), published incrementally ===\n");
    // The paper's §6 operational question: the HR department publishes the
    // Bob projection first, then asks whether it is safe to ALSO publish
    // Carol's. A session answers each marginal question over the engine's
    // warm compiled artifacts and reports how much was reused.
    let schema = employee_schema();
    let (secret, views, domain) = intro_collusion();
    let named: Vec<(String, qvsec_cq::ConjunctiveQuery)> = views
        .iter()
        .cloned()
        .zip(["bob", "carol"])
        .map(|(v, who)| (who.to_string(), v))
        .collect();
    let steps =
        session_publication_audit(&secret, &named, &schema, &domain).expect("audit succeeds");
    for step in &steps {
        println!(
            "  step {} publish {:<8} -> {}{}",
            step.step,
            step.view,
            if step.report.secure == Some(false) {
                "NOT secure"
            } else {
                "secure"
            },
            if step.marginal.newly_insecure {
                "  (this view broke security)"
            } else {
                ""
            }
        );
        println!(
            "         cache: {} crit hits, {} class verdicts reused, {} misses",
            step.cache.crit_cache_hits,
            step.cache.class_verdicts_reused,
            step.cache.crit_cache_misses
        );
    }
    println!();
}

fn guess_probability_simulation() {
    println!("=== Guessing a phone number after the Bob/Carol collusion ===\n");
    // Four employees per department: the adversary who sees both projections
    // knows the four candidate phone numbers of Alice's department and picks
    // one at random — 25% success, exactly as the introduction argues.
    let schema = employee_schema();
    let mut domain = Domain::new();
    let employees = [
        ("alice", "sales", "p1"),
        ("bea", "sales", "p2"),
        ("carl", "sales", "p3"),
        ("dora", "sales", "p4"),
        ("ed", "hr", "p5"),
        ("fay", "hr", "p6"),
        ("gus", "hr", "p7"),
        ("hana", "hr", "p8"),
    ];
    for (n, d, p) in employees {
        domain.add(n);
        domain.add(d);
        domain.add(p);
    }
    let database = Instance::from_tuples(
        employees
            .iter()
            .map(|(n, d, p)| Tuple::from_names(&schema, &domain, "Employee", &[n, d, p]).unwrap()),
    );
    let v_bob = parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let v_carol = parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let bob_answer = qvsec_cq::evaluate(&v_bob, &database);
    let carol_answer = qvsec_cq::evaluate(&v_carol, &database);

    // the adversary's strategy: find alice's department in Bob's view, then
    // guess uniformly among the phones Carol's view lists for it.
    let alice = domain.get("alice").unwrap();
    let alice_dept = bob_answer
        .iter()
        .find(|row| row[0] == alice)
        .map(|row| row[1])
        .expect("alice appears in Bob's view");
    let candidate_phones: Vec<_> = carol_answer
        .iter()
        .filter(|row| row[0] == alice_dept)
        .map(|row| row[1])
        .collect();
    let true_phone = domain.get("p1").unwrap();
    let mut rng = StdRng::seed_from_u64(2026);
    let trials = 100_000;
    let mut hits = 0usize;
    for _ in 0..trials {
        if candidate_phones.choose(&mut rng) == Some(&true_phone) {
            hits += 1;
        }
    }
    println!(
        "  departments of size {}, simulated guess success: {:.3} (theory: {:.3})\n",
        candidate_phones.len(),
        hits as f64 / trials as f64,
        1.0 / candidate_phones.len() as f64
    );

    // and the same adversary without the views: guessing among all phones
    let all_phones = 8.0;
    println!(
        "  without the views the success probability is only {:.3}",
        1.0 / all_phones
    );
    // Monte-Carlo sanity check that the association itself is not determined:
    // the probability that a random tuple-independent database with the same
    // marginals contains Employee(alice, sales, p1).
    let (_, dict) = qvsec::practical::expected_size_dictionary(&schema, 4, 2).unwrap();
    let mc = MonteCarloEstimator::new(&dict, 2000, 7);
    let _ = mc.sample_once();
    println!();
}

fn main() {
    audit_manufacturing();
    audit_employee();
    guess_probability_simulation();
}
