//! Runnable example applications for the `qvsec` workspace.
//!
//! This crate exists only to host the example binaries; see the files in the
//! package root (`quickstart.rs`, `collusion_audit.rs`, `medical_privacy.rs`,
//! `encrypted_publishing.rs`, `prior_knowledge_audit.rs`) and run them with
//!
//! ```text
//! cargo run -p qvsec-examples --example quickstart
//! ```
